open Dtc_util
open Nvm
open History
open Sched

type row = {
  label : string;
  mk : unit -> Runtime.Machine.t * Obj_inst.t;
  workloads : int -> Spec.op list array;
  policy : Session.policy;
  expect_zero : bool;
  crash_prob : float;
  max_crashes : int;
  directed : (unit -> int) option;
      (* some ablations need a directed schedule: random torture rarely
         produces e.g. the ABA re-installation race; the closure returns
         the number of violations the directed run exhibits *)
}

(* The directed ABA attack (the toggle bits' raison d'être): q installs v,
   p's write of w reaches its store to R, a reader observes w, q
   re-installs v — crash.  A recovery that compares only R against its
   pre-write snapshot concludes "not linearized" and, under Give_up,
   abandons a write somebody already read. *)
let aba_directed ~mk () =
  let machine, inst = mk () in
  let workloads =
    [|
      [ Spec.write_op (Value.Int 9) ];
      [ Spec.write_op (Value.Int 5); Spec.write_op (Value.Int 5) ];
      [ Spec.read_op ];
    |]
  in
  let session =
    Session.create ~policy:Session.Give_up machine inst ~workloads
  in
  let mem = Runtime.Machine.mem machine in
  let r =
    let rec find k =
      if k >= Mem.n_locs mem then failwith "no R location"
      else
        let loc = Mem.loc_by_id mem k in
        if loc.Loc.name = "R" then loc else find (k + 1)
    in
    find 0
  in
  let r_value () = Value.nth (Mem.read mem r) 0 in
  let guard = ref 0 in
  let step_until pid pred =
    while not (pred ()) do
      incr guard;
      if !guard > 20_000 then failwith "ABA script did not converge";
      Session.step session pid
    done
  in
  let rets pid =
    List.length
      (List.filter
         (function Event.Ret { pid = p; _ } -> p = pid | _ -> false)
         (Session.history session))
  in
  step_until 1 (fun () -> Value.equal (r_value ()) (Value.Int 5));
  step_until 1 (fun () -> rets 1 >= 1);
  step_until 0 (fun () -> Value.equal (r_value ()) (Value.Int 9));
  step_until 2 (fun () -> rets 2 >= 1);
  step_until 1 (fun () -> Value.equal (r_value ()) (Value.Int 5));
  Session.crash session ~keep:(fun _ -> true);
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        incr guard;
        if !guard > 40_000 then failwith "drain did not converge";
        Session.step session pid;
        drain ()
  in
  drain ();
  let verdict =
    match Session.anomalies session with
    | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
    | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)
  in
  match verdict with Lin_check.Ok_linearizable _ -> 0 | Lin_check.Violation _ -> 1

let reg_workloads base seed =
  Workload.register (Dtc_util.Prng.create (base + seed)) ~procs:3
    ~ops_per_proc:3 ~values:2

let rows =
  [
    {
      label = "drw (Alg.1), retry";
      mk = (fun () -> Common.mk_drw ());
      workloads = reg_workloads 0;
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "drw (Alg.1), give-up";
      mk = (fun () -> Common.mk_drw ());
      workloads = reg_workloads 10_000;
      policy = Session.Give_up;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "dcas (Alg.2), retry";
      mk = (fun () -> Common.mk_dcas ());
      workloads =
        (fun seed ->
          Workload.cas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
            ~values:2);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "dmax (Alg.3), retry";
      mk = (fun () -> Common.mk_dmax ());
      workloads =
        (fun seed ->
          Workload.max_register (Dtc_util.Prng.create seed) ~procs:3
            ~ops_per_proc:3 ~values:5);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "dcounter (capsule), retry";
      mk = (fun () -> Common.mk_dcounter ());
      workloads =
        (fun seed ->
          Workload.counter (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "dfaa (capsule), retry";
      mk = (fun () -> Common.mk_dfaa ());
      workloads =
        (fun seed ->
          Workload.faa (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
            ~max_delta:3);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "dqueue, retry";
      mk = (fun () -> Common.mk_dqueue ());
      workloads =
        (fun seed ->
          Workload.queue (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
            ~values:3);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "urw (unbounded), retry";
      mk = (fun () -> Common.mk_urw ());
      workloads = reg_workloads 20_000;
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "ucas (unbounded), retry";
      mk = (fun () -> Common.mk_ucas ());
      workloads =
        (fun seed ->
          Workload.cas (Dtc_util.Prng.create (30_000 + seed)) ~procs:3
            ~ops_per_proc:3 ~values:2);
      policy = Session.Retry;
      expect_zero = true;
      crash_prob = 0.05;
      max_crashes = 2;
      directed = None;
    };
    {
      label = "ABLATION drw without toggle bits (directed ABA)";
      mk =
        (fun () ->
          let m = Runtime.Machine.create () in
          (m, Baselines.Broken.drw_no_toggle m ~n:3 ~init:(Value.Int 0)));
      workloads = reg_workloads 40_000;
      policy = Session.Give_up;
      expect_zero = false;
      crash_prob = 0.15;
      max_crashes = 3;
      directed =
        Some
          (fun () ->
            aba_directed
              ~mk:(fun () ->
                let m = Runtime.Machine.create () in
                (m, Baselines.Broken.drw_no_toggle m ~n:3 ~init:(Value.Int 0)))
              ());
    };
    {
      label = "ABLATION dcas without flip vector";
      mk =
        (fun () ->
          let m = Runtime.Machine.create () in
          (m, Baselines.Broken.dcas_no_vec m ~n:3 ~init:(Value.Int 0)));
      workloads =
        (fun seed ->
          Workload.cas (Dtc_util.Prng.create (50_000 + seed)) ~procs:3
            ~ops_per_proc:3 ~values:2);
      policy = Session.Retry;
      expect_zero = false;
      crash_prob = 0.15;
      max_crashes = 3;
      directed = None;
    };
    {
      label = "drw (Alg.1) under the same directed ABA";
      mk = (fun () -> Common.mk_drw ());
      workloads = reg_workloads 45_000;
      policy = Session.Give_up;
      expect_zero = true;
      crash_prob = 0.15;
      max_crashes = 3;
      directed = Some (fun () -> aba_directed ~mk:(fun () -> Common.mk_drw ()) ());
    };
    {
      (* the plain register's single-step write is crash-atomic in the
         simulation, so the queue — whose enqueue has a window between
         its link CAS and its return — is the not-recoverable exhibit *)
      label = "ABLATION plain queue (not recoverable)";
      mk =
        (fun () ->
          let m = Runtime.Machine.create () in
          (m, Baselines.Plain.queue m ~capacity:64));
      workloads =
        (fun seed ->
          Workload.queue (Dtc_util.Prng.create (60_000 + seed)) ~procs:3
            ~ops_per_proc:3 ~values:3);
      policy = Session.Give_up;
      expect_zero = false;
      crash_prob = 0.15;
      max_crashes = 3;
      directed = None;
    };
  ]

let table ?(trials = 60) () =
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E6 (Lemmas 1-2): crash torture, %d random runs per row (3 procs, random schedules, <=2 crashes)"
           trials)
      [ "implementation"; "runs"; "crashes"; "violations"; "expected"; "as predicted" ]
  in
  List.iter
    (fun r ->
      let runs, violations, crashes =
        match r.directed with
        | Some f -> (1, f (), 1)
        | None ->
            let violations, crashes =
              Common.torture_count ~policy:r.policy ~crash_prob:r.crash_prob
                ~max_crashes:r.max_crashes ~trials ~mk:r.mk
                ~workloads_of_seed:r.workloads ()
            in
            (trials, violations, crashes)
      in
      let ok = if r.expect_zero then violations = 0 else violations > 0 in
      Table.add_row t
        [
          r.label;
          string_of_int runs;
          string_of_int crashes;
          string_of_int violations;
          (if r.expect_zero then "0" else ">0");
          (if ok then "yes" else "NO");
        ])
    rows;
  t
