open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

let mk_drw ?(n = 3) () =
  let m = Machine.create () in
  (m, Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0)))

let mk_dcas ?(n = 3) () =
  let m = Machine.create () in
  (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(i 0)))

let mk_dmax ?(n = 3) () =
  let m = Machine.create () in
  (m, Detectable.Dmax.instance (Detectable.Dmax.create m ~n ~init:0))

let mk_dcounter ?(n = 3) () =
  let m = Machine.create () in
  (m, Detectable.Transform.instance (Detectable.Transform.counter m ~n ~init:0))

let mk_dfaa ?(n = 3) () =
  let m = Machine.create () in
  (m, Detectable.Transform.instance (Detectable.Transform.faa m ~n ~init:0))

let mk_dqueue ?(n = 3) ?(capacity = 64) () =
  let m = Machine.create () in
  (m, Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n ~capacity))

let mk_urw ?(n = 3) () =
  let m = Machine.create () in
  (m, Baselines.Urw.instance (Baselines.Urw.create m ~n ~init:(i 0)))

let mk_ucas ?(n = 3) () =
  let m = Machine.create () in
  (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n ~init:(i 0)))

let torture_count ?(policy = Session.Retry) ?(keep_prob = 1.0)
    ?(crash_prob = 0.05) ?(max_crashes = 2) ~trials ~mk ~workloads_of_seed () =
  let violations = ref 0 in
  let crashes = ref 0 in
  for seed = 1 to trials do
    let prng = Dtc_util.Prng.create seed in
    let machine, inst = mk () in
    let cfg =
      {
        Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
        crash_plan =
          Crash_plan.random ~max_crashes ~keep_prob ~prob:crash_prob
            (Dtc_util.Prng.split prng);
        policy;
        max_steps = 50_000;
      }
    in
    match Driver.run machine inst ~workloads:(workloads_of_seed seed) cfg with
    | res ->
        crashes := !crashes + res.Driver.crashes;
        let verdict = Driver.check inst res in
        if res.Driver.incomplete || not (Lin_check.is_ok verdict) then
          incr violations
    | exception (Invalid_argument _ | Failure _) ->
        (* an algorithm choked on inconsistent NVM state (possible for the
           deliberately broken / untransformed variants): that is a
           correctness violation, not a harness failure *)
        incr violations
  done;
  (!violations, !crashes)

let run_steps ~mk ~workloads ~seed =
  let prng = Dtc_util.Prng.create seed in
  let machine, inst = mk () in
  let cfg =
    {
      Driver.default_config with
      schedule = Schedule.random (Dtc_util.Prng.split prng);
      (* inject a couple of crashes so recovery step counts are populated *)
      crash_plan =
        Crash_plan.random ~max_crashes:2 ~prob:0.03 (Dtc_util.Prng.split prng);
      max_steps = 1_000_000;
    }
  in
  Driver.run machine inst ~workloads cfg
