open Dtc_util
open History
open Sched

(* Drive the processes of subset [s] (bitmask) through one successful CAS
   each, sequentially, and return the final NVM snapshot. *)
let drive_subset ~n s =
  let machine = Runtime.Machine.create () in
  let dcas = Detectable.Dcas.create machine ~n ~init:(Common.i 0) in
  let inst = Detectable.Dcas.instance dcas in
  (* values 0, 1, 2, …: process k (k-th member of S) swaps the current
     value v for v+1, so every CAS succeeds; the domain has size ≥ N as
     Theorem 1 assumes *)
  let members = List.filter (fun p -> s land (1 lsl p) <> 0) (List.init n Fun.id) in
  let workloads = Array.make n [] in
  List.iteri
    (fun k p -> workloads.(p) <- [ Spec.cas_op (Common.i k) (Common.i (k + 1)) ])
    members;
  let session = Session.create machine inst ~workloads in
  (* run members one at a time, in order: each to completion *)
  List.iter
    (fun p ->
      while List.mem p (Session.runnable session) do
        Session.step session p
      done)
    members;
  if not (Session.finished session) then failwith "E1: session did not finish";
  Runtime.Machine.nvm_snapshot machine

let subset_configs ~n =
  let configs = Modelcheck.Config_set.create () in
  for s = 0 to (1 lsl n) - 1 do
    Modelcheck.Config_set.add configs (drive_subset ~n s)
  done;
  Modelcheck.Config_set.cardinal configs

let exhaustive_configs ~n =
  let workloads =
    Array.init n (fun p -> [ Spec.cas_op (Common.i p) (Common.i (p + 1)) ])
  in
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Common.mk_dcas ~n ())
      ~workloads
      {
        Modelcheck.Explore.default_config with
        switch_budget = 2;
        crash_budget = 1;
      }
  in
  out.Modelcheck.Explore.distinct_shared_configs

let table () =
  let t =
    Table.create ~title:"E1 (Fig.1/Thm.1): reachable non-memory-equivalent configurations of Algorithm 2"
      [ "N"; "subset-driven configs"; "paper bound 2^(N-1)"; "exhaustive (small N)" ]
  in
  List.iter
    (fun n ->
      let subset = subset_configs ~n in
      let bound = 1 lsl (n - 1) in
      let exhaustive = if n <= 3 then string_of_int (exhaustive_configs ~n) else "-" in
      Table.add_row t
        [ string_of_int n; string_of_int subset; string_of_int bound; exhaustive ])
    [ 1; 2; 3; 4; 5; 6; 8; 10 ];
  t
