open Dtc_util

(** Experiment E7 — the doubly-perturbing landscape (Lemma 3, Lemma 4,
    appendix Lemmas 5-8).

    Each of the paper's witnesses is verified mechanically against its
    sequential specification; the max register is searched
    bounded-exhaustively and must have no witness; the appendix's bounded
    counter is confirmed doubly-perturbing despite saturating (the
    "doubly-perturbing but not perturbable" example). *)

val table : unit -> Table.t
