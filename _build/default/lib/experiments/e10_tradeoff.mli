open Dtc_util

(** Experiment E10 — the time/space landscape (the paper's open problem).

    The discussion section asks about "the tradeoff between space and
    time complexity for detectable implementations, as well as the
    tradeoff between the complexities of a recoverable operation and its
    recovery function".  This experiment charts the empirical landscape
    across every implementation in the repository: shared bits
    (high-water, after a fixed workload), solo steps per operation, and
    max recovery steps observed — one row per implementation, bounded
    and unbounded, lock-free and lock-based, bespoke and universal.

    The shape the table exhibits: bounded space costs either time linear
    in N (Algorithm 1's toggle loop) or a stronger primitive (Algorithm
    2's CAS); unbounded tags buy flat-in-N time at footprints that grow
    with the operation count; the universal construction buys generality
    at replay time linear in the history. *)

val table : unit -> Table.t
