open Dtc_util

(** Experiment E5 — wait-freedom (Lemmas 1 and 2).

    The paper's algorithms are loop-free apart from Algorithm 1's
    toggle-raising for-loop, so an operation completes within a bounded
    number of its own steps regardless of the schedule.  This experiment
    measures, over adversarial random schedules, the maximum primitive
    steps any single invocation and any single recovery took, per object
    and operation, and prints the analytic bound next to it.  Lock-free
    objects (the capsule transform, the queue) report their observed
    maxima without a constant bound. *)

val table : unit -> Table.t
