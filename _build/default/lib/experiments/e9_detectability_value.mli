open Dtc_util

(** Experiment E9 — what detectability buys (Section 6's comparison with
    durable-only recoverability, made quantitative).

    Producer/consumer queue workloads with globally unique values run
    under crash torture with the Retry policy, on four implementations:
    the detectable queue, the durable (non-detectable) queue after
    Friedman et al., and the log-based universal construction in both
    modes.

    Every implementation keeps its {e state} consistent (all histories
    pass the checker — durable linearizability holds everywhere).  The
    difference is application-level: a durable-only recovery answers
    "unknown", so a retried enqueue may duplicate and an interrupted
    operation's fate stays unresolved; a detectable recovery answers
    exactly, so duplicates are zero and every crashed operation is
    resolved (completed with its response, or failed and knowingly
    retried). *)

val table : ?trials:int -> unit -> Table.t
