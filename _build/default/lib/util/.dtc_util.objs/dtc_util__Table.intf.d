lib/util/table.mli:
