lib/util/prng.mli:
