(** Minimal aligned ASCII table printer for experiment output.

    The benchmark harness prints each reproduced figure/table of the paper
    as a plain-text table; this module keeps the columns aligned without
    pulling in a formatting dependency. *)

type t
(** A table under construction. *)

val create : title:string -> string list -> t
(** [create ~title headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Rows shorter than the header are
    padded with empty cells; longer rows raise [Invalid_argument]. *)

val add_int_row : t -> int list -> unit
(** Convenience: a row of integers. *)

val render : t -> string
(** Render the table, title first, columns padded to their widest cell. *)

val print : t -> unit
(** [print t] writes [render t] to stdout followed by a blank line. *)
