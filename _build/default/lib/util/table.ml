type t = {
  title : string;
  headers : string list;
  mutable rows : string list list; (* reversed *)
}

let create ~title headers = { title; headers; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let k = List.length cells in
  if k > n then invalid_arg "Table.add_row: more cells than headers";
  let padded = cells @ List.init (n - k) (fun _ -> "") in
  t.rows <- padded :: t.rows

let add_int_row t cells = add_row t (List.map string_of_int cells)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad s w = s ^ String.make (w - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad row widths) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
