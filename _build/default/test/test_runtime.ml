(* Tests for the Runtime layer: fibers (effect suspension, resumption,
   crash kill), the machine's memory-model dispatch, and the announcement
   structure. *)

open Nvm
open Runtime

let v = Test_support.value_testable
let i n = Value.Int n

(* --- Fiber --- *)

let test_fiber_completes_without_steps () =
  let f = Fiber.start (fun () -> i 7) in
  match Fiber.status f with
  | Fiber.Done x -> Alcotest.check v "value" (i 7) x
  | _ -> Alcotest.fail "expected Done"

let test_fiber_suspends_and_resumes () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 1) in
  let f = Fiber.start (fun () -> Fiber.read a) in
  (match Fiber.status f with
  | Fiber.Pending (Prim.Read _) -> ()
  | _ -> Alcotest.fail "expected pending read");
  Fiber.resume f (i 42);
  match Fiber.status f with
  | Fiber.Done x -> Alcotest.check v "fed value" (i 42) x
  | _ -> Alcotest.fail "expected Done"

let test_fiber_sequence () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  let f =
    Fiber.start (fun () ->
        Fiber.write a (i 1);
        let x = Fiber.read a in
        Value.Int (Value.to_int x + 10))
  in
  let rec drive () =
    match Fiber.status f with
    | Fiber.Pending req ->
        Fiber.resume f (Machine.apply m req);
        drive ()
    | Fiber.Done x -> x
    | Fiber.Killed -> Alcotest.fail "killed"
  in
  Alcotest.check v "result" (i 11) (drive ());
  Alcotest.check v "memory" (i 1) (Machine.peek m a)

let test_fiber_kill () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  let side_effect = ref false in
  let f =
    Fiber.start (fun () ->
        Fiber.write a (i 1);
        side_effect := true;
        (* must never run: the fiber is killed while suspended *)
        Value.Unit)
  in
  Fiber.kill f;
  Alcotest.(check bool) "status killed" true (Fiber.status f = Fiber.Killed);
  Alcotest.(check bool) "continuation discarded" false !side_effect;
  (* idempotent *)
  Fiber.kill f;
  Alcotest.(check bool) "still killed" true (Fiber.status f = Fiber.Killed)

let test_fiber_resume_done_rejected () =
  let f = Fiber.start (fun () -> Value.Unit) in
  match Fiber.resume f Value.Unit with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "expected Invalid_argument"

let test_fiber_volatile_locals_lost () =
  (* a local mutable captured in the continuation dies with the fiber *)
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  let observed = ref [] in
  let f =
    Fiber.start (fun () ->
        let local = ref 1 in
        ignore (Fiber.read a);
        local := 2;
        ignore (Fiber.read a);
        observed := !local :: !observed;
        Value.Unit)
  in
  Fiber.resume f (i 0);
  Fiber.kill f;
  Alcotest.(check (list int)) "never reached the observation" [] !observed

(* --- Machine --- *)

let test_machine_private_cache_persist_noop () =
  let m = Machine.create ~model:Machine.Private_cache () in
  let a = Machine.alloc_shared m "a" (i 0) in
  ignore (Machine.apply m (Prim.Write (a, i 1)));
  (* in the private-cache model writes are immediately durable *)
  Machine.crash m ~keep:(fun _ -> false);
  Alcotest.check v "write survived crash" (i 1) (Mem.read (Machine.mem m) a)

let test_machine_shared_cache_crash () =
  let m = Machine.create ~model:Machine.Shared_cache () in
  let a = Machine.alloc_shared m "a" (i 0) in
  ignore (Machine.apply m (Prim.Write (a, i 1)));
  Alcotest.check v "cache-coherent read" (i 1) (Machine.peek m a);
  Alcotest.check v "NVM still old" (i 0) (Mem.read (Machine.mem m) a);
  Machine.crash m ~keep:(fun _ -> false);
  Alcotest.check v "unpersisted write lost" (i 0) (Machine.peek m a)

let test_machine_shared_cache_persist () =
  let m = Machine.create ~model:Machine.Shared_cache () in
  let a = Machine.alloc_shared m "a" (i 0) in
  ignore (Machine.apply m (Prim.Write (a, i 1)));
  ignore (Machine.apply m (Prim.Persist a));
  Machine.crash m ~keep:(fun _ -> false);
  Alcotest.check v "persisted write survived" (i 1) (Machine.peek m a)

let test_machine_fence () =
  let m = Machine.create ~model:Machine.Shared_cache () in
  let a = Machine.alloc_shared m "a" (i 0) in
  let b = Machine.alloc_shared m "b" (i 0) in
  ignore (Machine.apply m (Prim.Write (a, i 1)));
  ignore (Machine.apply m (Prim.Write (b, i 2)));
  ignore (Machine.apply m Prim.Fence);
  Machine.crash m ~keep:(fun _ -> false);
  Alcotest.check v "a persisted" (i 1) (Machine.peek m a);
  Alcotest.check v "b persisted" (i 2) (Machine.peek m b)

let test_machine_steps_counted () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  Alcotest.(check int) "zero" 0 (Machine.steps m);
  ignore (Machine.apply m (Prim.Read a));
  ignore (Machine.apply m (Prim.Write (a, i 1)));
  ignore (Machine.apply m Prim.Yield);
  Alcotest.(check int) "three" 3 (Machine.steps m);
  Machine.reset m;
  Alcotest.(check int) "reset" 0 (Machine.steps m);
  Alcotest.check v "memory reset" (i 0) (Machine.peek m a)

let test_machine_cas_faa_results () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  Alcotest.check v "cas true" (Value.Bool true)
    (Machine.apply m (Prim.Cas (a, i 0, i 1)));
  Alcotest.check v "cas false" (Value.Bool false)
    (Machine.apply m (Prim.Cas (a, i 0, i 2)));
  Alcotest.check v "faa old" (i 1) (Machine.apply m (Prim.Faa (a, 3)))

(* --- Prim --- *)

let test_prim_touches () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "a" (i 0) in
  let p = Machine.alloc_private m ~pid:0 "p" (i 0) in
  Alcotest.(check bool) "read touches" true (Prim.touches (Prim.Read a) = Some a);
  Alcotest.(check bool) "fence touches nothing" true (Prim.touches Prim.Fence = None);
  Alcotest.(check bool) "yield touches nothing" true (Prim.touches Prim.Yield = None);
  Alcotest.(check bool) "shared write" true
    (Prim.is_shared_write (Prim.Write (a, i 1)));
  Alcotest.(check bool) "private write not shared" false
    (Prim.is_shared_write (Prim.Write (p, i 1)));
  Alcotest.(check bool) "shared cas" true
    (Prim.is_shared_write (Prim.Cas (a, i 0, i 1)));
  Alcotest.(check bool) "read not a write" false
    (Prim.is_shared_write (Prim.Read a))

let test_prim_pp () =
  let m = Machine.create () in
  let a = Machine.alloc_shared m "cell" (i 0) in
  let s = Format.asprintf "%a" Prim.pp (Prim.Cas (a, i 0, i 1)) in
  Alcotest.(check bool) "mentions the location" true
    (let contains hay needle =
       let nh = String.length hay and nn = String.length needle in
       let rec go k = k + nn <= nh && (String.sub hay k nn = needle || go (k + 1)) in
       go 0
     in
     contains s "cell")

(* --- Ann --- *)

let drive_fiber m f =
  let rec go () =
    match Fiber.status f with
    | Fiber.Pending req ->
        Fiber.resume f (Machine.apply m req);
        go ()
    | Fiber.Done x -> x
    | Fiber.Killed -> Alcotest.fail "killed"
  in
  go ()

let test_ann_announce_pending () =
  let m = Machine.create () in
  let ann = Ann.alloc m ~pid:0 in
  Alcotest.(check bool) "initially idle" true (Ann.pending m ann = None);
  let f =
    Fiber.start (fun () ->
        Ann.announce ann ~name:"write" ~args:(i 5);
        Value.Unit)
  in
  ignore (drive_fiber m f);
  (match Ann.pending m ann with
  | Some ("write", args) -> Alcotest.check v "args" (i 5) args
  | _ -> Alcotest.fail "expected pending write");
  let f2 =
    Fiber.start (fun () ->
        Ann.clear ann;
        Value.Unit)
  in
  ignore (drive_fiber m f2);
  Alcotest.(check bool) "cleared" true (Ann.pending m ann = None)

let test_ann_announce_order () =
  (* the committing [op] write must come last: crash one step earlier
     leaves the announcement invisible *)
  let m = Machine.create () in
  let ann = Ann.alloc m ~pid:0 in
  let f =
    Fiber.start (fun () ->
        Ann.announce ann ~name:"write" ~args:(i 5);
        Value.Unit)
  in
  (* apply exactly two of the three announce writes *)
  (match Fiber.status f with
  | Fiber.Pending req -> Fiber.resume f (Machine.apply m req)
  | _ -> Alcotest.fail "expected step");
  (match Fiber.status f with
  | Fiber.Pending req -> Fiber.resume f (Machine.apply m req)
  | _ -> Alcotest.fail "expected step");
  Fiber.kill f;
  Alcotest.(check bool) "half announcement invisible" true
    (Ann.pending m ann = None)

let test_ann_fields () =
  let m = Machine.create () in
  let ann = Ann.alloc m ~pid:1 in
  let f =
    Fiber.start (fun () ->
        Ann.set_cp ann 2;
        Ann.set_resp ann (i 9);
        Value.pair (Value.Int (Ann.cp ann)) (Ann.resp ann))
  in
  let out = drive_fiber m f in
  Alcotest.check v "cp and resp" (Value.pair (i 2) (i 9)) out

let suites =
  [
    ( "runtime.fiber",
      [
        Alcotest.test_case "no-step completion" `Quick
          test_fiber_completes_without_steps;
        Alcotest.test_case "suspend/resume" `Quick test_fiber_suspends_and_resumes;
        Alcotest.test_case "sequencing" `Quick test_fiber_sequence;
        Alcotest.test_case "kill" `Quick test_fiber_kill;
        Alcotest.test_case "resume after done rejected" `Quick
          test_fiber_resume_done_rejected;
        Alcotest.test_case "volatile locals lost" `Quick
          test_fiber_volatile_locals_lost;
      ] );
    ( "runtime.machine",
      [
        Alcotest.test_case "private cache: writes durable" `Quick
          test_machine_private_cache_persist_noop;
        Alcotest.test_case "shared cache: crash drops" `Quick
          test_machine_shared_cache_crash;
        Alcotest.test_case "shared cache: persist" `Quick
          test_machine_shared_cache_persist;
        Alcotest.test_case "fence" `Quick test_machine_fence;
        Alcotest.test_case "step counting" `Quick test_machine_steps_counted;
        Alcotest.test_case "cas/faa results" `Quick test_machine_cas_faa_results;
      ] );
    ( "runtime.prim",
      [
        Alcotest.test_case "touches / is_shared_write" `Quick test_prim_touches;
        Alcotest.test_case "pretty printing" `Quick test_prim_pp;
      ] );
    ( "runtime.ann",
      [
        Alcotest.test_case "announce/pending/clear" `Quick
          test_ann_announce_pending;
        Alcotest.test_case "commit-last ordering" `Quick test_ann_announce_order;
        Alcotest.test_case "cp/resp fields" `Quick test_ann_fields;
      ] );
  ]
