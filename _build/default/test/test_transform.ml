(* Tests for the capsule transform: detectable counter and fetch-and-add
   built over the detectable CAS core. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let test_counter_sequential () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_dcounter ~n:1)
      [ Spec.read_op; Spec.inc_op; Spec.inc_op; Spec.read_op ]
  in
  Alcotest.(check (list v)) "responses"
    [ i 0; Spec.ack; Spec.ack; i 2 ]
    responses

let test_faa_sequential () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_dfaa ~n:1)
      [ Spec.faa_op 5; Spec.faa_op 3; Spec.read_op ]
  in
  Alcotest.(check (list v)) "faa returns old" [ i 0; i 5; i 8 ] responses

(* Exactly-once increments: with Retry, every inc eventually takes effect
   exactly once — the final counter value equals the number of incs. *)
let test_exactly_once_increments () =
  for seed = 1 to 60 do
    let n_incs = 6 in
    let workloads =
      [|
        List.init 3 (fun _ -> Spec.inc_op);
        List.init 3 (fun _ -> Spec.inc_op);
      |]
    in
    let machine = Runtime.Machine.create () in
    let t = Detectable.Transform.counter machine ~n:2 ~init:0 in
    let inst = Detectable.Transform.instance t in
    let prng = Dtc_util.Prng.create (31 * seed) in
    let cfg =
      {
        Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
        crash_plan =
          Crash_plan.random ~max_crashes:2 ~prob:0.05 (Dtc_util.Prng.split prng);
        policy = Session.Retry;
        max_steps = 50_000;
      }
    in
    let res = Driver.run machine inst ~workloads cfg in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "seed %d" seed);
    (* read back the final value sequentially *)
    let c =
      match Detectable.Transform.shared_locs t with
      | [ c ] -> c
      | _ -> assert false
    in
    let final = Value.to_int (Value.nth (Runtime.Machine.peek machine c) 0) in
    Alcotest.(check int)
      (Printf.sprintf "seed %d: exactly-once" seed)
      n_incs final
  done

let test_counter_torture () =
  Test_support.torture ~trials:100 ~name:"dcounter torture"
    (Test_support.mk_dcounter ~n:3) (fun seed ->
      Workload.counter (Dtc_util.Prng.create (100 + seed)) ~procs:3
        ~ops_per_proc:3)

let test_faa_torture () =
  Test_support.torture ~trials:100 ~name:"dfaa torture"
    (Test_support.mk_dfaa ~n:3) (fun seed ->
      Workload.faa (Dtc_util.Prng.create (200 + seed)) ~procs:3 ~ops_per_proc:3
        ~max_delta:3)

let test_faa_giveup_torture () =
  Test_support.torture ~policy:Session.Give_up ~trials:100
    ~name:"dfaa torture/giveup" (Test_support.mk_dfaa ~n:3) (fun seed ->
      Workload.faa (Dtc_util.Prng.create (300 + seed)) ~procs:3 ~ops_per_proc:3
        ~max_delta:3)

let test_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_dfaa ~n:2)
      ~workloads:[| [ Spec.faa_op 2 ]; [ Spec.faa_op 5; Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* A crashed read that never persisted a response must recover as fail,
   never inventing a value. *)
let test_crashed_read_fails_cleanly () =
  for k = 1 to 6 do
    let machine, inst = Test_support.mk_dcounter ~n:2 () in
    let cfg =
      {
        Driver.default_config with
        policy = Session.Give_up;
        crash_plan = Crash_plan.at_steps [ k ];
      }
    in
    let res =
      Driver.run machine inst
        ~workloads:[| [ Spec.read_op ]; [ Spec.inc_op ] |]
        cfg
    in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "crash at %d" k)
  done

let prop_transform_durable_linearizable =
  QCheck.Test.make ~name:"dfaa: DL + detectability under random crashes"
    ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.faa (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:2
          ~max_delta:4
      in
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000
          (Test_support.mk_dfaa ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.transform",
      [
        Alcotest.test_case "counter sequential" `Quick test_counter_sequential;
        Alcotest.test_case "faa sequential" `Quick test_faa_sequential;
        Alcotest.test_case "exactly-once increments" `Slow
          test_exactly_once_increments;
        Alcotest.test_case "counter torture" `Slow test_counter_torture;
        Alcotest.test_case "faa torture" `Slow test_faa_torture;
        Alcotest.test_case "faa torture (giveup)" `Slow test_faa_giveup_torture;
        Alcotest.test_case "crash at every step" `Quick
          test_crash_at_every_step;
        Alcotest.test_case "crashed read fails cleanly" `Quick
          test_crashed_read_fails_cleanly;
        QCheck_alcotest.to_alcotest prop_transform_durable_linearizable;
      ] );
  ]
