(* Tests for the extended capsule objects: detectable resettable
   test-and-set, swap, and the appendix's saturating bounded counter. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let mk_dtas ?(n = 3) () =
  let m = Runtime.Machine.create () in
  (m, Detectable.Transform.instance (Detectable.Transform.tas m ~n))

let mk_dswap ?(n = 3) () =
  let m = Runtime.Machine.create () in
  (m, Detectable.Transform.instance (Detectable.Transform.swap m ~n ~init:(i 0)))

let mk_dbounded ?(n = 3) () =
  let m = Runtime.Machine.create () in
  ( m,
    Detectable.Transform.instance
      (Detectable.Transform.bounded_counter m ~n ~lo:0 ~hi:2 ~init:0) )

(* --- tas --- *)

let test_tas_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_dtas ~n:1)
      [
        Spec.read_op;
        Spec.tas_op;
        Spec.tas_op;
        Spec.read_op;
        Spec.reset_op;
        Spec.tas_op;
      ]
  in
  Alcotest.(check (list v)) "responses"
    [
      Value.Bool false;
      Value.Bool false;
      Value.Bool true;
      Value.Bool true;
      Spec.ack;
      Value.Bool false;
    ]
    responses

let test_tas_single_winner () =
  (* crash-free: of N concurrent tas calls on a clear flag, exactly one
     returns false *)
  for seed = 1 to 40 do
    let machine, inst = mk_dtas ~n:4 () in
    let prng = Dtc_util.Prng.create seed in
    let cfg =
      {
        Driver.default_config with
        schedule = Schedule.random prng;
      }
    in
    let workloads = Array.make 4 [ Spec.tas_op ] in
    let res = Driver.run machine inst ~workloads cfg in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "seed %d" seed);
    let winners =
      List.length
        (List.filter
           (function
             | Event.Ret { v = Value.Bool false; _ } -> true | _ -> false)
           res.Driver.history)
    in
    Alcotest.(check int) (Printf.sprintf "seed %d: one winner" seed) 1 winners
  done

let test_tas_torture () =
  Test_support.torture ~trials:100 ~name:"dtas torture" (mk_dtas ~n:3)
    (fun seed ->
      Workload.tas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3)

let test_tas_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_dtas ~n:2)
      ~workloads:[| [ Spec.tas_op ]; [ Spec.tas_op; Spec.reset_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

let test_tas_adversary () =
  (* its own doubly-perturbing witness attack must come back clean; the
     capsule's operations are long, so sweep crash points over several
     fixed interleavings instead of full delay-bounded exploration *)
  let e = Perturb.Witnesses.tas in
  let schedules =
    [
      (fun () -> Schedule.round_robin ());
      (fun () -> Schedule.scripted (List.init 200 (fun _ -> 0)));
      (fun () -> Schedule.scripted (List.init 200 (fun _ -> 1)));
      (fun () ->
        Schedule.scripted (List.concat (List.init 50 (fun _ -> [ 0; 0; 1 ]))));
    ]
  in
  List.iter
    (fun schedule ->
      List.iter
        (fun policy ->
          let out =
            Modelcheck.Explore.crash_points
              ~mk:(fun () -> mk_dtas ~n:2 ())
              ~workloads:e.Perturb.Witnesses.attack ~schedule ~policy ()
          in
          Alcotest.(check int) "dtas survives" 0
            out.Modelcheck.Explore.total_violations)
        [ Session.Retry; Session.Give_up ])
    schedules

(* bounded space: the flag cell is 1 value bit + N vec bits, flat in ops *)
let test_tas_bounded_space () =
  let footprint ops =
    let machine = Runtime.Machine.create () in
    let t = Detectable.Transform.tas machine ~n:3 in
    let inst = Detectable.Transform.instance t in
    let workloads =
      Array.init 3 (fun _ ->
          List.concat (List.init ops (fun _ -> [ Spec.tas_op; Spec.reset_op ])))
    in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    let res = Driver.run machine inst ~workloads cfg in
    Alcotest.(check bool) "complete" false res.Driver.incomplete;
    let c =
      match Detectable.Transform.shared_locs t with
      | [ c ] -> c
      | _ -> assert false
    in
    Mem.max_bits_of (Runtime.Machine.mem machine) c
  in
  Alcotest.(check int) "flat" (footprint 3) (footprint 100)

(* --- swap --- *)

let test_swap_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_dswap ~n:1)
      [ Spec.swap_op (i 4); Spec.swap_op (i 7); Spec.read_op ]
  in
  Alcotest.(check (list v)) "returns previous" [ i 0; i 4; i 7 ] responses

let test_swap_torture () =
  Test_support.torture ~trials:100 ~name:"dswap torture" (mk_dswap ~n:3)
    (fun seed ->
      Workload.swap (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:3)

let test_swap_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_dswap ~n:2)
      ~workloads:[| [ Spec.swap_op (i 1) ]; [ Spec.swap_op (i 2); Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* identity swap (same value) exercises the read-only identity path *)
let test_swap_identity () =
  Test_support.torture ~trials:60 ~name:"dswap identity" (mk_dswap ~n:3)
    (fun seed ->
      Workload.swap (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:1)

(* --- bounded counter --- *)

let test_bounded_counter_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_dbounded ~n:1)
      [ Spec.inc_op; Spec.inc_op; Spec.inc_op; Spec.read_op ]
  in
  Alcotest.(check v) "saturates at hi" (i 2) (List.nth responses 3)

let test_bounded_counter_torture () =
  Test_support.torture ~trials:100 ~name:"dbounded torture" (mk_dbounded ~n:3)
    (fun seed ->
      Workload.counter (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3)

let test_bounded_counter_invalid_init () =
  let machine = Runtime.Machine.create () in
  match Detectable.Transform.bounded_counter machine ~n:1 ~lo:0 ~hi:2 ~init:5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range init accepted"

let prop_tas_durable_linearizable =
  QCheck.Test.make ~name:"dtas: DL + detectability under random crashes"
    ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.tas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
      in
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000 (mk_dtas ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let prop_swap_durable_linearizable =
  QCheck.Test.make ~name:"dswap: DL + detectability under random crashes"
    ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.swap (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
          ~values:2
      in
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000 (mk_dswap ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.extras",
      [
        Alcotest.test_case "tas sequential" `Quick test_tas_sequential;
        Alcotest.test_case "tas single winner" `Quick test_tas_single_winner;
        Alcotest.test_case "tas torture" `Slow test_tas_torture;
        Alcotest.test_case "tas crash at every step" `Quick
          test_tas_crash_at_every_step;
        Alcotest.test_case "tas survives witness attack" `Slow
          test_tas_adversary;
        Alcotest.test_case "tas bounded space" `Quick test_tas_bounded_space;
        Alcotest.test_case "swap sequential" `Quick test_swap_sequential;
        Alcotest.test_case "swap torture" `Slow test_swap_torture;
        Alcotest.test_case "swap crash at every step" `Quick
          test_swap_crash_at_every_step;
        Alcotest.test_case "swap identity path" `Quick test_swap_identity;
        Alcotest.test_case "bounded counter sequential" `Quick
          test_bounded_counter_sequential;
        Alcotest.test_case "bounded counter torture" `Slow
          test_bounded_counter_torture;
        Alcotest.test_case "bounded counter invalid init" `Quick
          test_bounded_counter_invalid_init;
        QCheck_alcotest.to_alcotest prop_tas_durable_linearizable;
        QCheck_alcotest.to_alcotest prop_swap_durable_linearizable;
      ] );
  ]
