(* Cross-validation of the linearizability checker: a brute-force
   reference checker (enumerate every subset of pending operations and
   every real-time-consistent permutation) must agree with Lin_check's
   memoized search on every history — both genuine histories produced by
   the driver and randomly corrupted ones. *)

open Nvm
open History
open Sched

let i n = Value.Int n

type rkind = Must of Value.t | Must_not | May

type rop = {
  uid : int;
  op : Spec.op;
  inv : int;
  out : int option;
  kind : rkind;
}

let analyze events =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iteri
    (fun idx e ->
      match (e : Event.t) with
      | Event.Crash -> ()
      | Event.Inv { uid; op; _ } ->
          Hashtbl.replace tbl uid { uid; op; inv = idx; out = None; kind = May };
          order := uid :: !order
      | Event.Ret { uid; v; _ } | Event.Rec_ret { uid; v; _ } ->
          let r = Hashtbl.find tbl uid in
          Hashtbl.replace tbl uid { r with out = Some idx; kind = Must v }
      | Event.Rec_fail { uid; _ } ->
          let r = Hashtbl.find tbl uid in
          Hashtbl.replace tbl uid { r with out = Some idx; kind = Must_not })
    events;
  List.rev_map (Hashtbl.find tbl) !order

(* all subsets of a list *)
let rec subsets = function
  | [] -> [ [] ]
  | x :: rest ->
      let s = subsets rest in
      s @ List.map (fun sub -> x :: sub) s

let reference_check (spec : Spec.t) events =
  let records = analyze events in
  let musts = List.filter (fun r -> match r.kind with Must _ -> true | _ -> false) records in
  let mays = List.filter (fun r -> r.kind = May) records in
  let precedes a b =
    match a.out with Some o -> o < b.inv | None -> false
  in
  (* try every subset of pending ops *)
  List.exists
    (fun included_mays ->
      let pool = musts @ included_mays in
      (* enumerate linear extensions of the real-time partial order *)
      let rec extend remaining state =
        match remaining with
        | [] -> true
        | _ ->
            List.exists
              (fun r ->
                (* minimal: nothing else in [remaining] precedes r *)
                if List.exists (fun r' -> r'.uid <> r.uid && precedes r' r) remaining
                then false
                else
                  let state', resp = spec.Spec.step state r.op in
                  let ok =
                    match r.kind with
                    | Must v -> Value.equal resp v
                    | May -> true
                    | Must_not -> assert false
                  in
                  ok
                  && extend
                       (List.filter (fun r' -> r'.uid <> r.uid) remaining)
                       state')
              remaining
      in
      extend pool spec.Spec.init)
    (subsets mays)

let agree spec events =
  let reference = reference_check spec events in
  let fast = Lin_check.is_ok (Lin_check.check spec events) in
  if reference <> fast then
    Alcotest.failf "checkers disagree (reference=%b, lin_check=%b) on:@.%a"
      reference fast Event.pp_history events

(* genuine histories from short torture runs *)
let small_history ~seed mk workloads =
  let _, res = Test_support.run_one ~seed ~max_steps:20_000 mk workloads in
  res.Driver.history

let test_agree_on_genuine_histories () =
  for seed = 1 to 120 do
    let workloads =
      Workload.register (Dtc_util.Prng.create seed) ~procs:2 ~ops_per_proc:2
        ~values:2
    in
    agree (Spec.register (i 0))
      (small_history ~seed (Test_support.mk_drw ~n:2) workloads)
  done;
  for seed = 1 to 120 do
    let workloads =
      Workload.cas (Dtc_util.Prng.create (500 + seed)) ~procs:2 ~ops_per_proc:2
        ~values:2
    in
    agree (Spec.cas_cell (i 0))
      (small_history ~seed (Test_support.mk_dcas ~n:2) workloads)
  done

(* corrupt one response so violating histories are also compared *)
let corrupt prng events =
  let ret_positions =
    List.filteri (fun _ e -> match e with Event.Ret _ -> true | _ -> false) events
    |> List.length
  in
  if ret_positions = 0 then events
  else begin
    let target = Dtc_util.Prng.int prng ret_positions in
    let seen = ref (-1) in
    List.map
      (fun e ->
        match (e : Event.t) with
        | Event.Ret { pid; uid; _ } ->
            incr seen;
            if !seen = target then
              Event.Ret { pid; uid; v = i (Dtc_util.Prng.int prng 4) }
            else e
        | e -> e)
      events
  end

let test_agree_on_corrupted_histories () =
  for seed = 1 to 150 do
    let prng = Dtc_util.Prng.create (9_000 + seed) in
    let workloads =
      Workload.register (Dtc_util.Prng.split prng) ~procs:2 ~ops_per_proc:2
        ~values:2
    in
    let history =
      small_history ~seed (Test_support.mk_drw ~n:2) workloads
    in
    agree (Spec.register (i 0)) (corrupt prng history)
  done

let test_reference_sanity () =
  (* the reference itself behaves on the canonical cases *)
  let inv pid uid op = Event.Inv { pid; uid; op } in
  let ret pid uid v = Event.Ret { pid; uid; v } in
  let reg = Spec.register (i 0) in
  Alcotest.(check bool) "sequential ok" true
    (reference_check reg
       [ inv 0 0 (Spec.write_op (i 5)); ret 0 0 Spec.ack; inv 1 1 Spec.read_op; ret 1 1 (i 5) ]);
  Alcotest.(check bool) "wrong read rejected" false
    (reference_check reg
       [ inv 0 0 (Spec.write_op (i 5)); ret 0 0 Spec.ack; inv 1 1 Spec.read_op; ret 1 1 (i 7) ]);
  Alcotest.(check bool) "pending flexible" true
    (reference_check reg
       [ inv 0 0 (Spec.write_op (i 9)); inv 1 1 Spec.read_op; ret 1 1 (i 0) ])

let suites =
  [
    ( "history.reference",
      [
        Alcotest.test_case "reference sanity" `Quick test_reference_sanity;
        Alcotest.test_case "agrees on genuine histories" `Slow
          test_agree_on_genuine_histories;
        Alcotest.test_case "agrees on corrupted histories" `Slow
          test_agree_on_corrupted_histories;
      ] );
  ]
