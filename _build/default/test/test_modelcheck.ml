(* Tests for the bounded exhaustive explorer itself. *)

open Nvm
open History
open Sched

let i n = Value.Int n

let test_deterministic_replay () =
  (* same configuration twice gives identical statistics *)
  let cfg =
    { Modelcheck.Explore.default_config with switch_budget = 2; crash_budget = 0 }
  in
  let run () =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.read_op ] |]
      cfg
  in
  let a = run () and b = run () in
  Alcotest.(check int) "executions" a.Modelcheck.Explore.executions
    b.Modelcheck.Explore.executions;
  Alcotest.(check int) "nodes" a.Modelcheck.Explore.nodes
    b.Modelcheck.Explore.nodes;
  Alcotest.(check int) "configs" a.Modelcheck.Explore.distinct_shared_configs
    b.Modelcheck.Explore.distinct_shared_configs

let test_switch_budget_monotone () =
  (* a larger budget explores at least as many executions *)
  let run budget =
    (Modelcheck.Explore.explore
       ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
       ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 0) (i 2) ] |]
       {
         Modelcheck.Explore.default_config with
         switch_budget = budget;
         crash_budget = 0;
       })
      .Modelcheck.Explore.executions
  in
  let e0 = run 0 and e1 = run 1 and e2 = run 2 in
  Alcotest.(check bool) "0 <= 1" true (e0 <= e1);
  Alcotest.(check bool) "1 <= 2" true (e1 <= e2);
  (* budget 0: each process runs as a solo block; with two processes there
     are exactly 2 executions *)
  Alcotest.(check int) "budget 0 = two block orders" 2 e0

let test_crash_budget_zero_means_no_crash () =
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      { Modelcheck.Explore.default_config with crash_budget = 0; switch_budget = 0 }
  in
  Alcotest.(check int) "single execution" 1 out.Modelcheck.Explore.executions;
  List.iter
    (fun (v : Modelcheck.Explore.violation) ->
      Alcotest.failf "unexpected violation %s" v.msg)
    out.Modelcheck.Explore.violations

let test_configs_counted_up_to_equivalence () =
  (* a solo CAS on a 1-process object visits exactly 2 distinct shared
     configurations: initial and post-CAS *)
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      { Modelcheck.Explore.default_config with crash_budget = 0; switch_budget = 0 }
  in
  Alcotest.(check int) "two configs" 2
    out.Modelcheck.Explore.distinct_shared_configs

let test_crash_points_covers_all () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(fun () -> Test_support.mk_dcas ~n:1 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  (* one crash-free run + one run per step of the crash-free run *)
  Alcotest.(check bool) "several executions" true
    (out.Modelcheck.Explore.executions > 5)

let test_violation_reports_schedule () =
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () ->
        let m = Runtime.Machine.create () in
        (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0)))
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      Modelcheck.Explore.default_config
  in
  match out.Modelcheck.Explore.violations with
  | [] -> Alcotest.fail "expected a violation sample"
  | v :: _ ->
      Alcotest.(check bool) "has schedule" true (v.decisions <> []);
      Alcotest.(check bool) "has history" true (v.history <> []);
      Alcotest.(check bool) "schedule contains the crash" true
        (List.mem Modelcheck.Explore.Crash v.decisions)

let suites =
  [
    ( "modelcheck.explore",
      [
        Alcotest.test_case "deterministic replay" `Quick
          test_deterministic_replay;
        Alcotest.test_case "switch budget monotone" `Quick
          test_switch_budget_monotone;
        Alcotest.test_case "crash budget zero" `Quick
          test_crash_budget_zero_means_no_crash;
        Alcotest.test_case "configs up to equivalence" `Quick
          test_configs_counted_up_to_equivalence;
        Alcotest.test_case "crash_points coverage" `Quick
          test_crash_points_covers_all;
        Alcotest.test_case "violation sample" `Quick
          test_violation_reports_schedule;
      ] );
  ]
