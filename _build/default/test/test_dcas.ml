(* Tests for Algorithm 2: the bounded-space detectable CAS object. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let test_sequential_semantics () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_dcas ~n:1)
      [
        Spec.read_op;
        Spec.cas_op (i 0) (i 5);
        Spec.cas_op (i 0) (i 9);
        Spec.read_op;
        Spec.cas_op (i 5) (i 0);
      ]
  in
  Alcotest.(check (list v)) "responses"
    [ i 0; Value.Bool true; Value.Bool false; i 5; Value.Bool true ]
    responses

let test_crash_free_concurrent () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"dcas crash-free"
    (Test_support.mk_dcas ~n:3) (fun seed ->
      Workload.cas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4
        ~values:3)

let test_crash_torture_retry () =
  Test_support.torture ~trials:120 ~name:"dcas torture/retry"
    (Test_support.mk_dcas ~n:3) (fun seed ->
      Workload.cas (Dtc_util.Prng.create (1000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let test_crash_torture_giveup () =
  Test_support.torture ~policy:Session.Give_up ~trials:120
    ~name:"dcas torture/giveup" (Test_support.mk_dcas ~n:3) (fun seed ->
      Workload.cas (Dtc_util.Prng.create (2000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let test_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_dcas ~n:2)
      ~workloads:
        [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* ABA stress: tiny value domain forces the same values to be reinstalled
   repeatedly; vec bits must still disambiguate. *)
let test_aba_stress () =
  Test_support.torture ~trials:100 ~max_crashes:3 ~crash_prob:0.08
    ~name:"dcas aba" (Test_support.mk_dcas ~n:4) (fun seed ->
      Workload.cas (Dtc_util.Prng.create (5000 + seed)) ~procs:4
        ~ops_per_proc:3 ~values:2)

(* Identity-CAS storm: cas(v,v) operations mixed with real CASes and
   crashes — the published algorithm's pair-CAS would spuriously fail
   these (see the module documentation of Dcas); the read-only identity
   path must keep every history linearizable. *)
let test_identity_cas_storm () =
  Test_support.torture ~trials:100 ~name:"dcas identity storm"
    (Test_support.mk_dcas ~n:3) (fun seed ->
      let prng = Dtc_util.Prng.create (9_000 + seed) in
      Array.init 3 (fun _ ->
          List.init 3 (fun _ ->
              match Dtc_util.Prng.int prng 4 with
              | 0 -> Spec.cas_op (i 0) (i 0)
              | 1 -> Spec.cas_op (i 1) (i 1)
              | 2 -> Spec.cas_op (i 0) (i 1)
              | _ -> Spec.cas_op (i 1) (i 0))))

(* The flip-vector invariant: after any crash-free successful CAS by p,
   C.vec[p] differs from its value before the operation. *)
let test_vec_flips_on_success () =
  let machine = Runtime.Machine.create () in
  let d = Detectable.Dcas.create machine ~n:2 ~init:(i 0) in
  let inst = Detectable.Dcas.instance d in
  let c =
    match Detectable.Dcas.shared_locs d with [ c ] -> c | _ -> assert false
  in
  let vec_bit () =
    Value.to_bool (Value.nth (Value.nth (Runtime.Machine.peek machine c) 1) 0)
  in
  let before = vec_bit () in
  let res =
    Driver.run machine inst
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ] |]
      Driver.default_config
  in
  Test_support.assert_ok inst res ~ctx:"vec flip";
  Alcotest.(check bool) "bit flipped" (not before) (vec_bit ())

let test_vec_stable_on_failure () =
  let machine = Runtime.Machine.create () in
  let d = Detectable.Dcas.create machine ~n:2 ~init:(i 0) in
  let inst = Detectable.Dcas.instance d in
  let c =
    match Detectable.Dcas.shared_locs d with [ c ] -> c | _ -> assert false
  in
  let vec_bit () =
    Value.to_bool (Value.nth (Value.nth (Runtime.Machine.peek machine c) 1) 0)
  in
  let before = vec_bit () in
  let res =
    Driver.run machine inst
      ~workloads:[| [ Spec.cas_op (i 7) (i 1) ] |]
      Driver.default_config
  in
  Test_support.assert_ok inst res ~ctx:"vec stable";
  Alcotest.(check bool) "bit unchanged" before (vec_bit ())

(* Wait-freedom: CAS is loop-free — constant own steps. *)
let test_step_bounds () =
  let machine, inst = Test_support.mk_dcas ~n:8 () in
  let prng = Dtc_util.Prng.create 7 in
  let workloads =
    Workload.cas (Dtc_util.Prng.split prng) ~procs:8 ~ops_per_proc:4 ~values:3
  in
  let cfg =
    {
      Driver.default_config with
      schedule = Schedule.random (Dtc_util.Prng.split prng);
    }
  in
  let res = Driver.run machine inst ~workloads cfg in
  Test_support.assert_ok inst res ~ctx:"step bounds";
  List.iter
    (fun (opname, steps) ->
      match opname with
      | "cas" ->
          Alcotest.(check bool)
            (Printf.sprintf "cas steps %d constant" steps)
            true (steps <= 12)
      | "read" ->
          Alcotest.(check bool)
            (Printf.sprintf "read steps %d constant" steps)
            true (steps <= 8)
      | _ -> ())
    res.op_steps

(* Θ(N) space: C's footprint is the value bits + exactly N vector bits, and
   it does not grow with the number of operations. *)
let test_theta_n_space () =
  let extra_bits n =
    let machine = Runtime.Machine.create () in
    let d = Detectable.Dcas.create machine ~n ~init:(i 0) in
    let inst = Detectable.Dcas.instance d in
    let prng = Dtc_util.Prng.create 99 in
    let workloads =
      Workload.cas (Dtc_util.Prng.split prng) ~procs:n ~ops_per_proc:5
        ~values:2
    in
    let res = Driver.run machine inst ~workloads Driver.default_config in
    Test_support.assert_ok inst res ~ctx:"space run";
    let c =
      match Detectable.Dcas.shared_locs d with [ c ] -> c | _ -> assert false
    in
    (* subtract the value's own bits (values 0/1 = 1 bit) *)
    Mem.max_bits_of (Runtime.Machine.mem machine) c - 1
  in
  Alcotest.(check int) "N=2" 2 (extra_bits 2);
  Alcotest.(check int) "N=5" 5 (extra_bits 5);
  Alcotest.(check int) "N=9" 9 (extra_bits 9)

let prop_dcas_durable_linearizable =
  QCheck.Test.make ~name:"dcas: DL + detectability under random crashes"
    ~count:150
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.cas (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
          ~values:2
      in
      let inst, res =
        Test_support.run_one ~seed (Test_support.mk_dcas ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.dcas",
      [
        Alcotest.test_case "sequential semantics" `Quick
          test_sequential_semantics;
        Alcotest.test_case "crash-free concurrent" `Quick
          test_crash_free_concurrent;
        Alcotest.test_case "crash torture (retry)" `Slow
          test_crash_torture_retry;
        Alcotest.test_case "crash torture (giveup)" `Slow
          test_crash_torture_giveup;
        Alcotest.test_case "crash at every step" `Quick
          test_crash_at_every_step;
        Alcotest.test_case "ABA stress" `Slow test_aba_stress;
        Alcotest.test_case "identity CAS storm" `Slow test_identity_cas_storm;
        Alcotest.test_case "vec flips on success" `Quick
          test_vec_flips_on_success;
        Alcotest.test_case "vec stable on failure" `Quick
          test_vec_stable_on_failure;
        Alcotest.test_case "wait-free step bounds" `Quick test_step_bounds;
        Alcotest.test_case "Θ(N) space" `Quick test_theta_n_space;
        QCheck_alcotest.to_alcotest prop_dcas_durable_linearizable;
      ] );
  ]
