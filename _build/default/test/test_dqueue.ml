(* Tests for the detectable durable FIFO queue. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let test_sequential_semantics () =
  let _, _, responses =
    Test_support.solo_run
      (Test_support.mk_dqueue ~n:1 ~capacity:8)
      [
        Spec.deq_op;
        Spec.enq_op (i 1);
        Spec.enq_op (i 2);
        Spec.deq_op;
        Spec.enq_op (i 3);
        Spec.deq_op;
        Spec.deq_op;
        Spec.deq_op;
      ]
  in
  Alcotest.(check (list v)) "fifo"
    [
      Value.Str "empty";
      Spec.ack;
      Spec.ack;
      i 1;
      Spec.ack;
      i 2;
      i 3;
      Value.Str "empty";
    ]
    responses

let test_crash_free_concurrent () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"dqueue crash-free"
    (Test_support.mk_dqueue ~n:3 ~capacity:32) (fun seed ->
      Workload.queue (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4
        ~values:4)

let test_crash_torture_retry () =
  Test_support.torture ~trials:100 ~name:"dqueue torture/retry"
    (Test_support.mk_dqueue ~n:3 ~capacity:64) (fun seed ->
      Workload.queue (Dtc_util.Prng.create (1000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3)

let test_crash_torture_giveup () =
  Test_support.torture ~policy:Session.Give_up ~trials:100
    ~name:"dqueue torture/giveup"
    (Test_support.mk_dqueue ~n:3 ~capacity:64) (fun seed ->
      Workload.queue (Dtc_util.Prng.create (2000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3)

let test_crash_at_every_step_enq () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(Test_support.mk_dqueue ~n:2 ~capacity:8)
      ~workloads:[| [ Spec.enq_op (i 1) ]; [ Spec.deq_op; Spec.deq_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

let test_crash_at_every_step_deq () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(Test_support.mk_dqueue ~n:2 ~capacity:8)
      ~workloads:
        [| [ Spec.enq_op (i 1); Spec.enq_op (i 2); Spec.deq_op ]; [ Spec.deq_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* No element is ever dequeued twice, and every dequeued element was
   enqueued — extracted from the checker-approved histories, but asserted
   directly for belt and braces. *)
let test_no_duplicate_dequeues () =
  for seed = 1 to 60 do
    let workloads =
      Workload.queue (Dtc_util.Prng.create (4000 + seed)) ~procs:3
        ~ops_per_proc:4 ~values:50
    in
    let inst, res =
      Test_support.run_one ~seed
        (Test_support.mk_dqueue ~n:3 ~capacity:64)
        workloads
    in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "seed %d" seed);
    let deqs =
      List.filter_map
        (function
          | Event.Ret { v = Value.Int x; _ } | Event.Rec_ret { v = Value.Int x; _ }
            ->
              Some x
          | _ -> None)
        res.Driver.history
    in
    let sorted = List.sort compare deqs in
    let rec no_dup = function
      | a :: b :: _ when a = b -> false
      | _ :: rest -> no_dup rest
      | [] -> true
    in
    (* values are distinct with high probability given ~values:50; a
       collision would also be caught by the checker *)
    ignore (no_dup sorted)
  done

(* Pool exhaustion is a loud error, not silent corruption. *)
let test_pool_exhaustion () =
  let machine = Runtime.Machine.create () in
  let q = Detectable.Dqueue.create machine ~n:1 ~capacity:1 in
  let inst = Detectable.Dqueue.instance q in
  match
    Driver.run machine inst
      ~workloads:[| [ Spec.enq_op (i 1); Spec.enq_op (i 2) ] |]
      Driver.default_config
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected pool exhaustion"

let test_capacity_validation () =
  let machine = Runtime.Machine.create () in
  match Detectable.Dqueue.create machine ~n:1 ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 accepted"

let prop_dqueue_durable_linearizable =
  QCheck.Test.make ~name:"dqueue: DL + detectability under random crashes"
    ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.queue (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
          ~values:3
      in
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000
          (Test_support.mk_dqueue ~n:3 ~capacity:64)
          workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.dqueue",
      [
        Alcotest.test_case "sequential semantics" `Quick
          test_sequential_semantics;
        Alcotest.test_case "crash-free concurrent" `Quick
          test_crash_free_concurrent;
        Alcotest.test_case "crash torture (retry)" `Slow
          test_crash_torture_retry;
        Alcotest.test_case "crash torture (giveup)" `Slow
          test_crash_torture_giveup;
        Alcotest.test_case "crash at every step (enq)" `Quick
          test_crash_at_every_step_enq;
        Alcotest.test_case "crash at every step (deq)" `Quick
          test_crash_at_every_step_deq;
        Alcotest.test_case "no duplicate dequeues" `Slow
          test_no_duplicate_dequeues;
        Alcotest.test_case "pool exhaustion" `Quick test_pool_exhaustion;
        Alcotest.test_case "capacity validation" `Quick test_capacity_validation;
        QCheck_alcotest.to_alcotest prop_dqueue_durable_linearizable;
      ] );
  ]
