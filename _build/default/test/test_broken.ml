(* Tests for the broken ablations: each deleted mechanism must produce a
   detectable violation — this is the sanity check that the whole oracle
   chain (driver → history → checker) can actually catch bugs. *)

open Nvm
open History
open Sched

let i n = Value.Int n

let mk_refail () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.rw_no_aux_refail m ~n:2 ~init:(i 0))

let mk_reexec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.rw_no_aux_reexec m ~n:2 ~init:(i 0))

let mk_no_toggle ?(n = 3) () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.drw_no_toggle m ~n ~init:(i 0))

let mk_no_vec () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Broken.dcas_no_vec m ~n:2 ~init:(i 0))

(* Figure 2 workload: p writes, q reads around q's own write. *)
let fig2_workload =
  [| [ Spec.write_op (i 1) ]; [ Spec.read_op; Spec.write_op (i 0); Spec.read_op ] |]

let test_refail_violates () =
  (* the fail verdict denies a write a concurrent read already saw *)
  let out =
    Modelcheck.Explore.crash_points ~mk:mk_refail ~workloads:fig2_workload
      ~schedule:(fun () -> Schedule.scripted (List.init 40 (fun _ -> 0)))
      ~policy:Session.Give_up ()
  in
  Alcotest.(check bool) "violation found" true
    (out.Modelcheck.Explore.total_violations > 0)

let test_reexec_violates () =
  (* re-execution gives the write two linearization points around q's
     write — the Figure 2 execution *)
  let cfg =
    { Modelcheck.Explore.default_config with switch_budget = 2 }
  in
  let out = Modelcheck.Explore.explore ~mk:mk_reexec ~workloads:fig2_workload cfg in
  Alcotest.(check bool) "violation found" true
    (out.Modelcheck.Explore.total_violations > 0)

(* The same attacks leave the real algorithms intact. *)
let test_real_drw_survives_both () =
  let mk () = Test_support.mk_drw ~n:2 () in
  let out1 =
    Modelcheck.Explore.crash_points ~mk ~workloads:fig2_workload
      ~schedule:(fun () -> Schedule.scripted (List.init 40 (fun _ -> 0)))
      ~policy:Session.Give_up ()
  in
  Alcotest.(check int) "crash_points clean" 0
    out1.Modelcheck.Explore.total_violations;
  let cfg = { Modelcheck.Explore.default_config with switch_budget = 2 } in
  let out2 = Modelcheck.Explore.explore ~mk ~workloads:fig2_workload cfg in
  Alcotest.(check int) "explore clean" 0 out2.Modelcheck.Explore.total_violations

(* ABA kills the toggle-free Algorithm 1: q re-installs the very value p
   read, p's recovery wrongly concludes its write never happened, but a
   reader observed it.  The scenario is driven deterministically, guided
   by the observed register contents rather than hard-coded step counts:

     p1 writes 5 (completes) — p0 starts write 9, runs until its store to
     R lands — p2 reads (sees 9) — p1 writes 5 again (re-installing the
     exact pair (5, p1)) — CRASH — everyone recovers and drains.

   The toggle-free recovery sees R unchanged since p0's pre-write read
   and answers fail; with Give_up the write is abandoned, leaving p2's
   read of 9 inexplicable.  The real Algorithm 1 runs the identical
   script and survives: the toggle bit p0 lowered has been raised again
   by p1's completed intervening write, so recovery completes the
   operation instead. *)
let run_aba_script mk =
  let machine, inst = mk () in
  let workloads =
    [|
      [ Spec.write_op (i 9) ];
      [ Spec.write_op (i 5); Spec.write_op (i 5) ];
      [ Spec.read_op ];
    |]
  in
  let session = Session.create ~policy:Session.Give_up machine inst ~workloads in
  let mem = Runtime.Machine.mem machine in
  (* both variants allocate exactly one shared location named "R" *)
  let r =
    let rec find k =
      if k >= Mem.n_locs mem then Alcotest.fail "no R location"
      else
        let loc = Mem.loc_by_id mem k in
        if loc.Nvm.Loc.name = "R" then loc else find (k + 1)
    in
    find 0
  in
  let r_value () = Value.nth (Mem.read mem r) 0 in
  let guard = ref 0 in
  let step_until pid pred =
    while not (pred ()) do
      incr guard;
      if !guard > 10_000 then Alcotest.fail "ABA script did not converge";
      Session.step session pid
    done
  in
  let rets pid =
    List.length
      (List.filter
         (function Event.Ret { pid = p; _ } -> p = pid | _ -> false)
         (Session.history session))
  in
  (* p1's first write lands and completes *)
  step_until 1 (fun () -> Value.equal (r_value ()) (i 5));
  step_until 1 (fun () -> rets 1 >= 1);
  (* p0 runs exactly until its store to R *)
  step_until 0 (fun () -> Value.equal (r_value ()) (i 9));
  (* p2 observes p0's value *)
  step_until 2 (fun () -> rets 2 >= 1);
  (* p1 re-installs (5, p1) *)
  step_until 1 (fun () -> Value.equal (r_value ()) (i 5));
  Session.crash session ~keep:(fun _ -> true);
  (* drain everyone *)
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        incr guard;
        if !guard > 20_000 then Alcotest.fail "drain did not converge";
        Session.step session pid;
        drain ()
  in
  drain ();
  match Session.anomalies session with
  | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
  | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)

let test_no_toggle_violates () =
  match run_aba_script (mk_no_toggle ~n:3) with
  | Lin_check.Violation _ -> ()
  | Lin_check.Ok_linearizable _ ->
      Alcotest.fail "toggle-free ablation survived the ABA script"

let test_real_drw_survives_aba () =
  match run_aba_script (fun () -> Test_support.mk_drw ~n:3 ()) with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg -> Alcotest.failf "real drw violated: %s" msg

(* The vec-free Algorithm 2 guesses wrong in both directions. *)
let test_no_vec_violates () =
  let workloads =
    [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
  in
  let cfg =
    { Modelcheck.Explore.default_config with switch_budget = 3 }
  in
  let out = Modelcheck.Explore.explore ~mk:mk_no_vec ~workloads cfg in
  Alcotest.(check bool) "violation found" true
    (out.Modelcheck.Explore.total_violations > 0)

let test_real_dcas_survives () =
  let workloads =
    [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
  in
  let cfg = { Modelcheck.Explore.default_config with switch_budget = 3 } in
  let out =
    Modelcheck.Explore.explore
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads cfg
  in
  Alcotest.(check int) "clean" 0 out.Modelcheck.Explore.total_violations

let suites =
  [
    ( "baselines.broken",
      [
        Alcotest.test_case "no-aux refail violates (Thm 2)" `Quick
          test_refail_violates;
        Alcotest.test_case "no-aux reexec violates (Thm 2)" `Quick
          test_reexec_violates;
        Alcotest.test_case "real drw survives the same attacks" `Quick
          test_real_drw_survives_both;
        Alcotest.test_case "no-toggle violates (ABA)" `Slow
          test_no_toggle_violates;
        Alcotest.test_case "real drw survives ABA" `Slow
          test_real_drw_survives_aba;
        Alcotest.test_case "no-vec violates" `Quick test_no_vec_violates;
        Alcotest.test_case "real dcas survives" `Quick test_real_dcas_survives;
      ] );
  ]
