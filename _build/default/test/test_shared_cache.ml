(* Tests for the shared-cache model (Section 6): the persist-instrumented
   algorithms must survive crashes that lose arbitrary subsets of
   unpersisted cache lines; an uninstrumented algorithm must not. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

let torture_shared_cache ~name ~trials mk workloads_of_seed =
  Test_support.torture ~keep_prob:0.5 ~trials ~name mk workloads_of_seed

let test_drw_persist () =
  torture_shared_cache ~name:"drw shared-cache" ~trials:100
    (Test_support.mk_drw ~persist:true ~model:Machine.Shared_cache ~n:3)
    (fun seed ->
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:2)

let test_dcas_persist () =
  torture_shared_cache ~name:"dcas shared-cache" ~trials:100
    (Test_support.mk_dcas ~persist:true ~model:Machine.Shared_cache ~n:3)
    (fun seed ->
      Workload.cas (Dtc_util.Prng.create (100 + seed)) ~procs:3 ~ops_per_proc:3
        ~values:2)

let test_dmax_persist () =
  torture_shared_cache ~name:"dmax shared-cache" ~trials:100
    (Test_support.mk_dmax ~persist:true ~model:Machine.Shared_cache ~n:3)
    (fun seed ->
      Workload.max_register (Dtc_util.Prng.create (200 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:5)

let test_transform_persist () =
  torture_shared_cache ~name:"dfaa shared-cache" ~trials:80
    (Test_support.mk_dfaa ~persist:true ~model:Machine.Shared_cache ~n:3)
    (fun seed ->
      Workload.faa (Dtc_util.Prng.create (300 + seed)) ~procs:3 ~ops_per_proc:2
        ~max_delta:3)

let test_dqueue_persist () =
  torture_shared_cache ~name:"dqueue shared-cache" ~trials:80
    (Test_support.mk_dqueue ~persist:true ~model:Machine.Shared_cache ~n:3
       ~capacity:64)
    (fun seed ->
      Workload.queue (Dtc_util.Prng.create (400 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3)

let test_dprotected_persist () =
  torture_shared_cache ~name:"dprotected shared-cache" ~trials:80
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      ( m,
        Detectable.Dprotected.instance
          (Detectable.Dprotected.create ~persist:true m ~n:3 ~init:0) ))
    (fun seed ->
      Workload.counter (Dtc_util.Prng.create (600 + seed)) ~procs:3
        ~ops_per_proc:2)

let test_ulog_persist () =
  torture_shared_cache ~name:"ulog shared-cache" ~trials:80
    (fun () ->
      let m = Machine.create ~model:Machine.Shared_cache () in
      ( m,
        Detectable.Ulog.instance
          (Detectable.Ulog.create ~persist:true m ~n:3 ~capacity:64
             ~spec:(History.Spec.register (i 0))) ))
    (fun seed ->
      Workload.register (Dtc_util.Prng.create (700 + seed)) ~procs:3
        ~ops_per_proc:2 ~values:2)

(* Exhaustive adversarial write-back: crash at every step of a solo CAS
   with the mask that loses everything. *)
let test_dcas_keep_none_exhaustive () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(Test_support.mk_dcas ~persist:true ~model:Machine.Shared_cache ~n:2)
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ~keep:(fun _ -> false)
      ()
  in
  Alcotest.(check int) "no violations with keep-none" 0
    out.Modelcheck.Explore.total_violations

(* Without persist instrumentation, the shared-cache model breaks
   detectability: an uninstrumented Drw must violate somewhere when the
   cache is lost wholesale. *)
let test_uninstrumented_drw_breaks () =
  let mk () =
    let m = Machine.create ~model:Machine.Shared_cache () in
    (* note: persist:false — the algorithm runs its private-cache code *)
    (m, Detectable.Drw.instance (Detectable.Drw.create ~persist:false m ~n:2 ~init:(i 0)))
  in
  let out =
    Modelcheck.Explore.crash_points ~mk
      ~workloads:[| [ Spec.write_op (i 1) ]; [ Spec.read_op; Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.scripted (List.init 40 (fun _ -> 0)))
      ~keep:(fun _ -> false)
      ~policy:Session.Give_up ()
  in
  Alcotest.(check bool) "uninstrumented algorithm violated" true
    (out.Modelcheck.Explore.total_violations > 0)

(* Persist instructions are no-ops in the private-cache model: the
   instrumented algorithms still pass there. *)
let test_persist_harmless_in_private_cache () =
  Test_support.torture ~trials:40 ~name:"drw persist/private"
    (Test_support.mk_drw ~persist:true ~model:Machine.Private_cache ~n:3)
    (fun seed ->
      Workload.register (Dtc_util.Prng.create (500 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let suites =
  [
    ( "shared_cache",
      [
        Alcotest.test_case "drw instrumented" `Slow test_drw_persist;
        Alcotest.test_case "dcas instrumented" `Slow test_dcas_persist;
        Alcotest.test_case "dmax instrumented" `Slow test_dmax_persist;
        Alcotest.test_case "dfaa instrumented" `Slow test_transform_persist;
        Alcotest.test_case "dqueue instrumented" `Slow test_dqueue_persist;
        Alcotest.test_case "dprotected instrumented" `Slow
          test_dprotected_persist;
        Alcotest.test_case "ulog instrumented" `Slow test_ulog_persist;
        Alcotest.test_case "dcas keep-none exhaustive" `Quick
          test_dcas_keep_none_exhaustive;
        Alcotest.test_case "uninstrumented drw breaks" `Quick
          test_uninstrumented_drw_breaks;
        Alcotest.test_case "persist harmless in private cache" `Quick
          test_persist_harmless_in_private_cache;
      ] );
  ]
