(* Tests for the recoverable lock and the lock-based detectable counter. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let mk_prot ?(n = 3) ?(init = 0) () =
  let m = Machine.create () in
  (m, Detectable.Dprotected.instance (Detectable.Dprotected.create m ~n ~init))

(* --- the bare lock --- *)

let drive m f =
  let rec go () =
    match Fiber.status f with
    | Fiber.Pending req ->
        Fiber.resume f (Machine.apply m req);
        go ()
    | Fiber.Done x -> x
    | Fiber.Killed -> Alcotest.fail "killed"
  in
  go ()

let test_lock_acquire_release () =
  let m = Machine.create () in
  let lock = Detectable.Rlock.create m in
  Alcotest.(check bool) "initially free" false (Detectable.Rlock.holds m lock ~pid:0);
  let f =
    Fiber.start (fun () ->
        Detectable.Rlock.acquire lock ~pid:0;
        Value.Unit)
  in
  ignore (drive m f);
  Alcotest.(check bool) "acquired" true (Detectable.Rlock.holds m lock ~pid:0);
  Alcotest.(check bool) "not by others" false (Detectable.Rlock.holds m lock ~pid:1);
  let g =
    Fiber.start (fun () ->
        Detectable.Rlock.release lock ~pid:0;
        Value.Unit)
  in
  ignore (drive m g);
  Alcotest.(check bool) "released" false (Detectable.Rlock.holds m lock ~pid:0)

let test_lock_mutual_exclusion () =
  (* a contender spins while the lock is held, and gets it after release *)
  let m = Machine.create () in
  let lock = Detectable.Rlock.create m in
  let f0 =
    Fiber.start (fun () ->
        Detectable.Rlock.acquire lock ~pid:0;
        Value.Unit)
  in
  ignore (drive m f0);
  let f1 =
    Fiber.start (fun () ->
        Detectable.Rlock.acquire lock ~pid:1;
        Value.Unit)
  in
  (* run the contender a while: it must not acquire *)
  for _ = 1 to 20 do
    match Fiber.status f1 with
    | Fiber.Pending req -> Fiber.resume f1 (Machine.apply m req)
    | _ -> Alcotest.fail "contender terminated while lock held"
  done;
  Alcotest.(check bool) "still p0's" true (Detectable.Rlock.holds m lock ~pid:0);
  let r =
    Fiber.start (fun () ->
        Detectable.Rlock.release lock ~pid:0;
        Value.Unit)
  in
  ignore (drive m r);
  ignore (drive m f1);
  Alcotest.(check bool) "now p1's" true (Detectable.Rlock.holds m lock ~pid:1)

let test_lock_ownership_survives_crash () =
  let m = Machine.create () in
  let lock = Detectable.Rlock.create m in
  let f =
    Fiber.start (fun () ->
        Detectable.Rlock.acquire lock ~pid:2;
        Value.Unit)
  in
  ignore (drive m f);
  (* a crash only kills fibers; NVM ownership persists *)
  Machine.crash m ~keep:(fun _ -> true);
  Alcotest.(check bool) "still owned after crash" true
    (Detectable.Rlock.holds m lock ~pid:2)

(* --- the protected counter --- *)

let test_prot_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_prot ~n:1)
      [ Spec.read_op; Spec.inc_op; Spec.inc_op; Spec.read_op ]
  in
  Alcotest.(check (list v)) "responses" [ i 0; Spec.ack; Spec.ack; i 2 ] responses

let test_prot_crash_free_concurrent () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"dprotected crash-free"
    (mk_prot ~n:3) (fun seed ->
      Workload.counter (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4)

let test_prot_torture () =
  Test_support.torture ~trials:100 ~name:"dprotected torture" (mk_prot ~n:3)
    (fun seed ->
      Workload.counter (Dtc_util.Prng.create (100 + seed)) ~procs:3
        ~ops_per_proc:3)

let test_prot_torture_giveup () =
  Test_support.torture ~policy:Session.Give_up ~trials:100
    ~name:"dprotected torture/giveup" (mk_prot ~n:3) (fun seed ->
      Workload.counter (Dtc_util.Prng.create (200 + seed)) ~procs:3
        ~ops_per_proc:3)

let test_prot_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_prot ~n:2)
      ~workloads:[| [ Spec.inc_op ]; [ Spec.inc_op; Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations;
  (* and crash points under Give_up: an abandoned inc must not have
     leaked the lock (the run would hang and be cut off) *)
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_prot ~n:2)
      ~workloads:[| [ Spec.inc_op ]; [ Spec.inc_op; Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ~policy:Session.Give_up ()
  in
  Alcotest.(check int) "no violations (giveup)" 0
    out.Modelcheck.Explore.total_violations;
  Alcotest.(check int) "no truncated runs" 0 out.Modelcheck.Explore.truncated

(* exactly-once: with Retry, the final counter equals the increments, and
   the mirror cell caught up *)
let test_prot_exactly_once () =
  for seed = 1 to 60 do
    let machine = Machine.create () in
    let prot = Detectable.Dprotected.create machine ~n:2 ~init:0 in
    let inst = Detectable.Dprotected.instance prot in
    let prng = Dtc_util.Prng.create (31 * seed) in
    let cfg =
      {
        Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
        crash_plan =
          Crash_plan.random ~max_crashes:2 ~prob:0.05 (Dtc_util.Prng.split prng);
        policy = Session.Retry;
        max_steps = 50_000;
      }
    in
    let workloads = [| [ Spec.inc_op; Spec.inc_op ]; [ Spec.inc_op ] |] in
    let res = Driver.run machine inst ~workloads cfg in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "seed %d" seed);
    match Detectable.Dprotected.shared_locs prot with
    | [ _owner; a; b ] ->
        Alcotest.(check v) (Printf.sprintf "seed %d: a" seed) (i 3)
          (Machine.peek machine a);
        Alcotest.(check v) (Printf.sprintf "seed %d: mirror" seed) (i 3)
          (Machine.peek machine b)
    | _ -> Alcotest.fail "unexpected shared locs"
  done

let prop_prot_durable_linearizable =
  QCheck.Test.make ~name:"dprotected: DL + detectability under random crashes"
    ~count:120
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.counter (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
      in
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000 (mk_prot ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.rlock",
      [
        Alcotest.test_case "acquire/release" `Quick test_lock_acquire_release;
        Alcotest.test_case "mutual exclusion" `Quick test_lock_mutual_exclusion;
        Alcotest.test_case "ownership survives crash" `Quick
          test_lock_ownership_survives_crash;
        Alcotest.test_case "protected: sequential" `Quick test_prot_sequential;
        Alcotest.test_case "protected: crash-free concurrent" `Quick
          test_prot_crash_free_concurrent;
        Alcotest.test_case "protected: torture (retry)" `Slow test_prot_torture;
        Alcotest.test_case "protected: torture (giveup)" `Slow
          test_prot_torture_giveup;
        Alcotest.test_case "protected: crash at every step" `Quick
          test_prot_crash_at_every_step;
        Alcotest.test_case "protected: exactly-once" `Slow
          test_prot_exactly_once;
        QCheck_alcotest.to_alcotest prop_prot_durable_linearizable;
      ] );
  ]
