(* Tests for the history utilities. *)

open Nvm
open History

let i n = Value.Int n
let inv pid uid op = Event.Inv { pid; uid; op }
let ret pid uid v = Event.Ret { pid; uid; v }
let rret pid uid v = Event.Rec_ret { pid; uid; v }
let rfail pid uid = Event.Rec_fail { pid; uid }

let sample =
  [
    inv 0 0 (Spec.write_op (i 1));
    inv 1 1 Spec.read_op;
    ret 1 1 (i 0);
    Event.Crash;
    rret 0 0 Spec.ack;
    inv 1 2 (Spec.write_op (i 2));
    Event.Crash;
    rfail 1 2;
    inv 0 3 Spec.read_op;
  ]

let test_ops () =
  let infos = Hist.ops sample in
  Alcotest.(check int) "four ops" 4 (List.length infos);
  let find uid = List.find (fun (o : Hist.op_info) -> o.uid = uid) infos in
  (match (find 0).outcome with
  | Hist.Recovered v -> Alcotest.check Test_support.value_testable "recovered" Spec.ack v
  | _ -> Alcotest.fail "uid 0 should be recovered");
  (match (find 1).outcome with
  | Hist.Completed v -> Alcotest.check Test_support.value_testable "completed" (i 0) v
  | _ -> Alcotest.fail "uid 1 should be completed");
  Alcotest.(check bool) "uid 2 failed" true ((find 2).outcome = Hist.Failed);
  Alcotest.(check bool) "uid 3 pending" true ((find 3).outcome = Hist.Pending)

let test_stats () =
  let s = Hist.stats sample in
  Alcotest.(check int) "invocations" 4 s.Hist.invocations;
  Alcotest.(check int) "completed" 1 s.Hist.completed;
  Alcotest.(check int) "recovered" 1 s.Hist.recovered;
  Alcotest.(check int) "failed" 1 s.Hist.failed;
  Alcotest.(check int) "pending" 1 s.Hist.pending;
  Alcotest.(check int) "crashes" 2 s.Hist.crashes

let test_by_pid () =
  let groups = Hist.by_pid sample in
  Alcotest.(check (list int)) "pids" [ 0; 1 ] (List.map fst groups);
  Alcotest.(check int) "p0 ops" 2 (List.length (List.assoc 0 groups));
  Alcotest.(check int) "p1 ops" 2 (List.length (List.assoc 1 groups))

let test_responses () =
  Alcotest.(check (list Test_support.value_testable))
    "in outcome order"
    [ i 0; Spec.ack ]
    (Hist.responses sample)

let test_project () =
  let p1 = Hist.project sample ~pid:1 in
  Alcotest.(check int) "p1 events (incl. crashes)" 6 (List.length p1);
  Alcotest.(check bool) "crashes kept" true (List.mem Event.Crash p1)

let test_well_formed () =
  Alcotest.(check bool) "sample ok" true (Hist.well_formed sample = Ok ());
  (match Hist.well_formed [ ret 0 9 Spec.ack ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "unknown uid accepted");
  (match Hist.well_formed [ inv 0 0 Spec.read_op; inv 0 0 Spec.read_op ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "duplicate inv accepted");
  match
    Hist.well_formed [ inv 0 0 Spec.read_op; ret 0 0 (i 1); rfail 0 0 ]
  with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "double outcome accepted"

(* property: stats of a genuine driver history add up *)
let prop_stats_consistent =
  QCheck.Test.make ~name:"stats partition the invocations" ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Sched.Workload.register (Dtc_util.Prng.create seed) ~procs:3
          ~ops_per_proc:3 ~values:2
      in
      let _, res =
        Test_support.run_one ~seed (Test_support.mk_drw ~n:3) workloads
      in
      let s = Hist.stats res.Sched.Driver.history in
      s.Hist.invocations
      = s.Hist.completed + s.Hist.recovered + s.Hist.failed + s.Hist.pending)

let suites =
  [
    ( "history.hist",
      [
        Alcotest.test_case "ops" `Quick test_ops;
        Alcotest.test_case "stats" `Quick test_stats;
        Alcotest.test_case "by_pid" `Quick test_by_pid;
        Alcotest.test_case "responses" `Quick test_responses;
        Alcotest.test_case "project" `Quick test_project;
        Alcotest.test_case "well_formed" `Quick test_well_formed;
        QCheck_alcotest.to_alcotest prop_stats_consistent;
      ] );
  ]
