(* Tests for the perturbation framework: Definition 3 machinery, the
   paper's witnesses (Lemmas 3, 5-8), the max-register non-witness
   (Lemma 4), and the Theorem 2 adversary. *)

open Nvm
open History

let i n = Value.Int n

let test_is_perturbing_register () =
  let spec = Spec.register (i 0) in
  Alcotest.(check bool) "write perturbs read" true
    (Perturb.Perturbing.is_perturbing spec ~history:[]
       ~op:(Spec.write_op (i 1)) ~wrt:Spec.read_op);
  Alcotest.(check bool) "write of current value does not" false
    (Perturb.Perturbing.is_perturbing spec ~history:[]
       ~op:(Spec.write_op (i 0)) ~wrt:Spec.read_op);
  Alcotest.(check bool) "read never perturbs" false
    (Perturb.Perturbing.is_perturbing spec ~history:[] ~op:Spec.read_op
       ~wrt:Spec.read_op)

let test_all_witnesses_verify () =
  List.iter
    (fun (e : Perturb.Witnesses.entry) ->
      match Perturb.Perturbing.verify_witness e.spec e.witness with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" e.obj_name msg)
    Perturb.Witnesses.all

let test_witness_count () =
  (* register, counter, bounded counter, cas, faa, queue, swap, tas *)
  Alcotest.(check int) "eight witnesses" 8 (List.length Perturb.Witnesses.all)

let test_broken_witness_rejected () =
  let spec = Spec.register (i 0) in
  (* writing the initial value perturbs nothing *)
  let bogus =
    {
      Perturb.Perturbing.h1 = [];
      op_p = Spec.write_op (i 0);
      wrt1 = Spec.read_op;
      ext = [];
      wrt2 = Spec.read_op;
    }
  in
  match Perturb.Perturbing.verify_witness spec bogus with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "bogus witness accepted"

let test_condition2_rejected () =
  let spec = Spec.max_register 0 in
  (* write_max 5 perturbs a read after the empty history (condition 1),
     but no extension makes a second write_max 5 perturbing again *)
  let w =
    {
      Perturb.Perturbing.h1 = [];
      op_p = Spec.write_max_op 5;
      wrt1 = Spec.read_op;
      ext = [];
      wrt2 = Spec.read_op;
    }
  in
  match Perturb.Perturbing.verify_witness spec w with
  | Error msg ->
      Alcotest.(check bool) "fails on condition 2" true
        (String.length msg > 0)
  | Ok () -> Alcotest.fail "max register witness accepted"

let test_max_register_no_witness () =
  let alphabet = [ Spec.read_op; Spec.write_max_op 1; Spec.write_max_op 2 ] in
  Alcotest.(check bool) "Lemma 4" true
    (Perturb.Witnesses.max_register_has_no_witness ~alphabet ~max_h1:2
       ~max_ext:2)

let test_search_finds_register_witness () =
  let spec = Spec.register (i 0) in
  let alphabet = [ Spec.read_op; Spec.write_op (i 0); Spec.write_op (i 1) ] in
  match Perturb.Perturbing.search spec ~alphabet ~max_h1:1 ~max_ext:1 with
  | Some w -> (
      match Perturb.Perturbing.verify_witness spec w with
      | Ok () -> ()
      | Error m -> Alcotest.failf "search returned invalid witness: %s" m)
  | None -> Alcotest.fail "no witness found for the register"

let test_search_finds_queue_witness () =
  let spec = Spec.fifo_queue () in
  let alphabet = [ Spec.enq_op (i 0); Spec.enq_op (i 1); Spec.deq_op ] in
  match Perturb.Perturbing.search spec ~alphabet ~max_h1:2 ~max_ext:2 with
  | Some w -> (
      match Perturb.Perturbing.verify_witness spec w with
      | Ok () -> ()
      | Error m -> Alcotest.failf "invalid queue witness: %s" m)
  | None -> Alcotest.fail "no witness found for the queue"

(* Bounded counter: doubly-perturbing but not perturbable — once
   saturated, inc perturbs nothing. *)
let test_bounded_counter_saturates () =
  let spec = Spec.bounded_counter ~lo:0 ~hi:2 0 in
  Alcotest.(check bool) "perturbs when fresh" true
    (Perturb.Perturbing.is_perturbing spec ~history:[] ~op:Spec.inc_op
       ~wrt:Spec.read_op);
  Alcotest.(check bool) "saturated: no longer perturbing" false
    (Perturb.Perturbing.is_perturbing spec
       ~history:[ Spec.inc_op; Spec.inc_op ]
       ~op:Spec.inc_op ~wrt:Spec.read_op)

(* --- the Theorem 2 adversary --- *)

let test_adversary_kills_no_aux () =
  let e = Perturb.Witnesses.register in
  List.iter
    (fun mk ->
      let reports =
        Perturb.Adversary.attack ~mk ~workloads:e.attack ~switch_budget:2 ()
      in
      Alcotest.(check bool) "violated" false (Perturb.Adversary.survives reports))
    [
      (fun () ->
        let m = Runtime.Machine.create () in
        (m, Baselines.Broken.rw_no_aux_refail m ~n:2 ~init:(i 0)));
      (fun () ->
        let m = Runtime.Machine.create () in
        (m, Baselines.Broken.rw_no_aux_reexec m ~n:2 ~init:(i 0)));
    ]

let test_adversary_spares_aux_state_algorithms () =
  let e = Perturb.Witnesses.register in
  List.iter
    (fun mk ->
      let reports =
        Perturb.Adversary.attack ~mk ~workloads:e.attack ~switch_budget:2 ()
      in
      Alcotest.(check bool) "survives" true (Perturb.Adversary.survives reports))
    [
      (fun () -> Test_support.mk_drw ~n:2 ());
      (fun () -> Test_support.mk_urw ~n:2 ());
    ]

let test_adversary_cas_witness () =
  let e = Perturb.Witnesses.cas in
  let reports =
    Perturb.Adversary.attack
      ~mk:(fun () -> Test_support.mk_dcas ~n:2 ())
      ~workloads:e.attack ~switch_budget:2 ()
  in
  Alcotest.(check bool) "dcas survives its own witness attack" true
    (Perturb.Adversary.survives reports)

let test_adversary_spares_max_register () =
  (* max register: not doubly-perturbing, so its aux-state-free recovery
     is immune by Lemma 4 — the attack must come back clean *)
  let wl =
    [| [ Spec.write_max_op 1 ]; [ Spec.read_op; Spec.write_max_op 2; Spec.read_op ] |]
  in
  let reports =
    Perturb.Adversary.attack
      ~mk:(fun () -> Test_support.mk_dmax ~n:2 ())
      ~workloads:wl ~switch_budget:2 ()
  in
  Alcotest.(check bool) "dmax survives without aux state" true
    (Perturb.Adversary.survives reports)

let test_adversary_queue_witness () =
  (* queue operations are long, so full delay-bounded exploration of the
     queue witness explodes; a crash-point sweep over several fixed
     interleavings covers every crash placement at linear cost *)
  let e = Perturb.Witnesses.queue in
  let schedules =
    [
      (fun () -> Sched.Schedule.round_robin ());
      (fun () -> Sched.Schedule.scripted (List.init 200 (fun _ -> 0)));
      (fun () -> Sched.Schedule.scripted (List.init 200 (fun _ -> 1)));
      (fun () ->
        Sched.Schedule.scripted
          (List.concat (List.init 50 (fun _ -> [ 0; 0; 0; 1 ]))));
    ]
  in
  List.iter
    (fun schedule ->
      List.iter
        (fun policy ->
          let out =
            Modelcheck.Explore.crash_points
              ~mk:(fun () -> Test_support.mk_dqueue ~n:2 ~capacity:16 ())
              ~workloads:e.attack ~schedule ~policy ()
          in
          Alcotest.(check int) "dqueue survives" 0
            out.Modelcheck.Explore.total_violations)
        [ Sched.Session.Retry; Sched.Session.Give_up ])
    schedules

let suites =
  [
    ( "perturb.definitions",
      [
        Alcotest.test_case "is_perturbing" `Quick test_is_perturbing_register;
        Alcotest.test_case "all witnesses verify (Lemmas 3,5-8)" `Quick
          test_all_witnesses_verify;
        Alcotest.test_case "witness inventory" `Quick test_witness_count;
        Alcotest.test_case "bogus witness rejected" `Quick
          test_broken_witness_rejected;
        Alcotest.test_case "condition 2 enforced" `Quick test_condition2_rejected;
        Alcotest.test_case "max register: no witness (Lemma 4)" `Quick
          test_max_register_no_witness;
        Alcotest.test_case "search finds register witness" `Quick
          test_search_finds_register_witness;
        Alcotest.test_case "search finds queue witness" `Quick
          test_search_finds_queue_witness;
        Alcotest.test_case "bounded counter saturates" `Quick
          test_bounded_counter_saturates;
      ] );
    ( "perturb.adversary",
      [
        Alcotest.test_case "kills no-aux implementations (Thm 2)" `Quick
          test_adversary_kills_no_aux;
        Alcotest.test_case "spares aux-state algorithms" `Quick
          test_adversary_spares_aux_state_algorithms;
        Alcotest.test_case "dcas survives cas-witness attack" `Slow
          test_adversary_cas_witness;
        Alcotest.test_case "max register immune (Lemma 4)" `Quick
          test_adversary_spares_max_register;
        Alcotest.test_case "dqueue survives queue-witness attack" `Slow
          test_adversary_queue_witness;
      ] );
  ]
