(* Tests for Algorithm 3: the auxiliary-state-free detectable max
   register. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let test_sequential_semantics () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_dmax ~n:1)
      [
        Spec.read_op;
        Spec.write_max_op 5;
        Spec.read_op;
        Spec.write_max_op 3;
        Spec.read_op;
        Spec.write_max_op 8;
        Spec.read_op;
      ]
  in
  Alcotest.(check (list v)) "responses"
    [ i 0; Spec.ack; i 5; Spec.ack; i 5; Spec.ack; i 8 ]
    responses

let test_crash_free_concurrent () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"dmax crash-free"
    (Test_support.mk_dmax ~n:3) (fun seed ->
      Workload.max_register (Dtc_util.Prng.create seed) ~procs:3
        ~ops_per_proc:4 ~values:6)

let test_crash_torture () =
  Test_support.torture ~trials:120 ~name:"dmax torture"
    (Test_support.mk_dmax ~n:3) (fun seed ->
      Workload.max_register (Dtc_util.Prng.create (1000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:5)

let test_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_dmax ~n:2)
      ~workloads:
        [| [ Spec.write_max_op 4; Spec.read_op ]; [ Spec.write_max_op 2 ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* Recovery is pure re-invocation: the operation itself never reads the
   announcement fields.  We verify behaviourally: recovery after a crash
   mid-write still converges and every history checks out, even though no
   response was ever persisted. *)
let test_reinvocation_recovery () =
  for k = 1 to 10 do
    let machine, inst = Test_support.mk_dmax ~n:2 () in
    let cfg =
      { Driver.default_config with crash_plan = Crash_plan.at_steps [ k ] }
    in
    let res =
      Driver.run machine inst
        ~workloads:[| [ Spec.write_max_op 6 ]; [ Spec.read_op; Spec.read_op ] |]
        cfg
    in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "crash at %d" k)
  done

(* The double collect read is linearizable even while writers run. *)
let test_read_during_writes () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"dmax read/write race"
    (Test_support.mk_dmax ~n:4) (fun seed ->
      let prng = Dtc_util.Prng.create (7000 + seed) in
      Array.init 4 (fun pid ->
          if pid = 0 then [ Spec.read_op; Spec.read_op; Spec.read_op ]
          else
            List.init 3 (fun _ ->
                Spec.write_max_op (Dtc_util.Prng.int prng 8))))

(* Monotonicity across crashes: reads never go backwards. *)
let test_monotone_reads () =
  for seed = 1 to 50 do
    let workloads =
      let prng = Dtc_util.Prng.create (880 + seed) in
      Array.init 3 (fun pid ->
          if pid = 0 then List.init 4 (fun _ -> Spec.read_op)
          else
            List.init 3 (fun _ ->
                Spec.write_max_op (Dtc_util.Prng.int prng 9)))
    in
    let inst, res =
      Test_support.run_one ~seed (Test_support.mk_dmax ~n:3) workloads
    in
    Test_support.assert_ok inst res ~ctx:"monotone";
    (* reads of process 0, in order *)
    let reads =
      List.filter_map
        (function
          | Event.Ret { pid = 0; v = Value.Int x; _ } -> Some x
          | Event.Rec_ret { pid = 0; v = Value.Int x; _ } -> Some x
          | _ -> None)
        res.Driver.history
    in
    let rec monotone = function
      | a :: b :: rest -> a <= b && monotone (b :: rest)
      | _ -> true
    in
    if not (monotone reads) then
      Alcotest.failf "seed %d: reads went backwards: %s" seed
        (String.concat "," (List.map string_of_int reads))
  done

let prop_dmax_durable_linearizable =
  QCheck.Test.make ~name:"dmax: DL under random crashes" ~count:150
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.max_register (Dtc_util.Prng.create seed) ~procs:3
          ~ops_per_proc:3 ~values:5
      in
      let inst, res =
        Test_support.run_one ~seed (Test_support.mk_dmax ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.dmax",
      [
        Alcotest.test_case "sequential semantics" `Quick
          test_sequential_semantics;
        Alcotest.test_case "crash-free concurrent" `Quick
          test_crash_free_concurrent;
        Alcotest.test_case "crash torture" `Slow test_crash_torture;
        Alcotest.test_case "crash at every step" `Quick
          test_crash_at_every_step;
        Alcotest.test_case "re-invocation recovery" `Quick
          test_reinvocation_recovery;
        Alcotest.test_case "read during writes" `Quick test_read_during_writes;
        Alcotest.test_case "monotone reads" `Quick test_monotone_reads;
        QCheck_alcotest.to_alcotest prop_dmax_durable_linearizable;
      ] );
  ]
