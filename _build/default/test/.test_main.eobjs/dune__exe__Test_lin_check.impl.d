test/test_lin_check.ml: Alcotest Event History Lin_check List Nvm QCheck QCheck_alcotest Spec Test_support Value
