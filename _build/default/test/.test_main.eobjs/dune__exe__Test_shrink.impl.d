test/test_shrink.ml: Alcotest Baselines History List Modelcheck Nvm Runtime Spec String Test_support Value
