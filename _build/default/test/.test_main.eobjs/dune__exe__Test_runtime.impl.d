test/test_runtime.ml: Alcotest Ann Fiber Format Machine Mem Nvm Prim Runtime String Test_support Value
