test/test_dmax.ml: Alcotest Array Crash_plan Driver Dtc_util Event History Lin_check List Modelcheck Nvm Printf QCheck QCheck_alcotest Sched Schedule Spec String Test_support Value Workload
