test/test_modelcheck.ml: Alcotest Baselines History List Modelcheck Nvm Runtime Sched Schedule Spec Test_support Value
