test/test_drw.ml: Alcotest Crash_plan Driver Dtc_util History Lin_check List Mem Modelcheck Nvm Obj_inst Printf QCheck QCheck_alcotest Runtime Sched Schedule Session Spec Test_support Value Workload
