test/test_dqueue.ml: Alcotest Detectable Driver Dtc_util Event History Lin_check List Modelcheck Nvm Printf QCheck QCheck_alcotest Runtime Sched Schedule Session Spec Test_support Value Workload
