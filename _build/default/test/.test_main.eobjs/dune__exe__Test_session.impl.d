test/test_session.ml: Alcotest Array Crash_plan Driver Dtc_util Event Hashtbl History List Nvm Sched Schedule Session Spec Test_support Value Workload
