test/test_value.ml: Alcotest Array Nvm QCheck QCheck_alcotest Test_support Value
