test/test_broken.ml: Alcotest Baselines Event History Lin_check List Mem Modelcheck Nvm Obj_inst Runtime Sched Schedule Session Spec Test_support Value
