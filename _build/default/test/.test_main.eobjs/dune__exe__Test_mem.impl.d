test/test_mem.ml: Alcotest Array Cache List Loc Mem Nvm Printf QCheck QCheck_alcotest Test_support Value
