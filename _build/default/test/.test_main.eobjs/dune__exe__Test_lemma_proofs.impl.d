test/test_lemma_proofs.ml: Alcotest Event History Lin_check List Loc Machine Mem Nvm Obj_inst Printf Runtime Sched Session Spec Test_support Value
