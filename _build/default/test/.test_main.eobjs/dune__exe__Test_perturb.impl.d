test/test_perturb.ml: Alcotest Baselines History List Modelcheck Nvm Perturb Runtime Sched Spec String Test_support Value
