test/test_spec.ml: Alcotest History List Nvm QCheck QCheck_alcotest Spec Test_support Value
