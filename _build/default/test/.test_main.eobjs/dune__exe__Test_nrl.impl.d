test/test_nrl.ml: Alcotest Crash_plan Detectable Driver Dtc_util Event History Modelcheck Nvm Obj_inst Printf Runtime Sched Schedule Spec String Test_support Value Workload
