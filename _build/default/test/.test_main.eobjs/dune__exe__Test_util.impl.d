test/test_util.ml: Alcotest Array Dtc_util List Prng QCheck QCheck_alcotest String Table
