test/test_shared_cache.ml: Alcotest Detectable Dtc_util History List Machine Modelcheck Nvm Runtime Sched Schedule Session Spec Test_support Value Workload
