test/test_experiments.ml: Alcotest Dtc_util Experiments List Printf String
