test/test_dcas.ml: Alcotest Array Detectable Driver Dtc_util History Lin_check List Mem Modelcheck Nvm Printf QCheck QCheck_alcotest Runtime Sched Schedule Session Spec Test_support Value Workload
