test/test_reference.ml: Alcotest Driver Dtc_util Event Hashtbl History Lin_check List Nvm Sched Spec Test_support Value Workload
