test/test_baselines.ml: Alcotest Array Baselines Driver Dtc_util History List Mem Modelcheck Nvm Runtime Sched Schedule Session Spec Test_support Value Workload
