test/test_hist.ml: Alcotest Dtc_util Event Hist History List Nvm QCheck QCheck_alcotest Sched Spec Test_support Value
