test/test_ulog.ml: Alcotest Baselines Crash_plan Detectable Driver Dtc_util Event History List Machine Modelcheck Nvm Printf Runtime Sched Schedule Session Spec Test_support Value Workload
