(* Tests for object composition: the Section 6 composability claim made
   executable.  A composite of detectable objects is itself a detectable
   object, checked against the product specification. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let mk_pair ?(n = 3) () =
  let m = Runtime.Machine.create () in
  let acct = Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(i 0)) in
  let log =
    Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n ~capacity:64)
  in
  (m, Detectable.Compose.combine [ ("acct", acct); ("log", log) ])

let mk_regs ?(n = 3) () =
  let m = Runtime.Machine.create () in
  let a = Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0)) in
  let b = Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0)) in
  (m, Detectable.Compose.combine [ ("a", a); ("b", b) ])

let lift = Detectable.Compose.lift

let test_product_spec () =
  let spec =
    Detectable.Compose.product_spec
      [ ("a", Spec.register (i 0)); ("b", Spec.counter 0) ]
  in
  let responses =
    Spec.run spec
      [
        lift "a" (Spec.write_op (i 5));
        lift "b" Spec.inc_op;
        lift "a" Spec.read_op;
        lift "b" Spec.read_op;
      ]
  in
  Alcotest.(check (list v)) "responses" [ Spec.ack; Spec.ack; i 5; i 1 ] responses

let test_product_spec_unknown_component () =
  let spec = Detectable.Compose.product_spec [ ("a", Spec.register (i 0)) ] in
  (match Spec.run spec [ lift "zz" Spec.read_op ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown component accepted");
  match Spec.run spec [ Spec.read_op ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unprefixed op accepted"

let test_combine_validation () =
  let m = Runtime.Machine.create () in
  let a = Detectable.Dcas.instance (Detectable.Dcas.create m ~n:1 ~init:(i 0)) in
  (match Detectable.Compose.combine [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty composite accepted");
  (match Detectable.Compose.combine [ ("x", a); ("x", a) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted");
  match Detectable.Compose.combine [ ("x/y", a) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "name with separator accepted"

let test_sequential_composite () =
  let _, _, responses =
    Test_support.solo_run (mk_pair ~n:1)
      [
        lift "acct" (Spec.cas_op (i 0) (i 5));
        lift "log" (Spec.enq_op (i 100));
        lift "acct" Spec.read_op;
        lift "log" Spec.deq_op;
      ]
  in
  Alcotest.(check (list v)) "responses"
    [ Value.Bool true; Spec.ack; i 5; i 100 ]
    responses

let composite_workload base seed =
  let prng = Dtc_util.Prng.create (base + seed) in
  Array.init 3 (fun _ ->
      List.init 3 (fun _ ->
          if Dtc_util.Prng.bool prng then
            if Dtc_util.Prng.bool prng then
              lift "acct"
                (Spec.cas_op
                   (i (Dtc_util.Prng.int prng 2))
                   (i (Dtc_util.Prng.int prng 2)))
            else lift "acct" Spec.read_op
          else if Dtc_util.Prng.bool prng then
            lift "log" (Spec.enq_op (i (Dtc_util.Prng.int prng 5)))
          else lift "log" Spec.deq_op))

let test_composite_torture () =
  Test_support.torture ~trials:100 ~name:"composite torture" (mk_pair ~n:3)
    (composite_workload 0)

let test_composite_torture_giveup () =
  Test_support.torture ~policy:Session.Give_up ~trials:100
    ~name:"composite torture/giveup" (mk_pair ~n:3) (composite_workload 5_000)

let test_composite_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_pair ~n:2)
      ~workloads:
        [|
          [ lift "acct" (Spec.cas_op (i 0) (i 1)); lift "log" (Spec.enq_op (i 9)) ];
          [ lift "log" Spec.deq_op; lift "acct" Spec.read_op ];
        |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* recovery resolves exactly the component that was in flight *)
let test_recovery_routes_to_component () =
  for k = 1 to 16 do
    let machine, inst = mk_regs ~n:2 () in
    let cfg =
      { Driver.default_config with crash_plan = Crash_plan.at_steps [ k ] }
    in
    let res =
      Driver.run machine inst
        ~workloads:
          [|
            [ lift "a" (Spec.write_op (i 1)); lift "b" (Spec.write_op (i 2)) ];
            [ lift "b" Spec.read_op; lift "a" Spec.read_op ];
          |]
        cfg
    in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "crash at %d" k)
  done

let test_composite_pending_lifts () =
  let machine, inst = mk_regs ~n:1 () in
  let session =
    Session.create machine inst ~workloads:[| [ lift "b" (Spec.write_op (i 3)) ] |]
  in
  (* run through the announcement (3 writes) so the op is committed *)
  Session.step session 0;
  Session.step session 0;
  Session.step session 0;
  (match inst.Obj_inst.pending ~pid:0 with
  | Some op -> Alcotest.(check string) "prefixed" "b/write" op.Spec.name
  | None -> Alcotest.fail "expected pending op");
  (* drain *)
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        drain ()
  in
  drain ();
  Alcotest.(check bool) "cleared" true (inst.Obj_inst.pending ~pid:0 = None)

let prop_composite_durable_linearizable =
  QCheck.Test.make ~name:"composite: DL + detectability under random crashes"
    ~count:100
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let inst, res =
        Test_support.run_one ~seed ~max_steps:50_000 (mk_pair ~n:3)
          (composite_workload 9_000 seed)
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.compose",
      [
        Alcotest.test_case "product spec" `Quick test_product_spec;
        Alcotest.test_case "product spec validation" `Quick
          test_product_spec_unknown_component;
        Alcotest.test_case "combine validation" `Quick test_combine_validation;
        Alcotest.test_case "sequential composite" `Quick
          test_sequential_composite;
        Alcotest.test_case "composite torture" `Slow test_composite_torture;
        Alcotest.test_case "composite torture (giveup)" `Slow
          test_composite_torture_giveup;
        Alcotest.test_case "crash at every step" `Quick
          test_composite_crash_at_every_step;
        Alcotest.test_case "recovery routes to component" `Quick
          test_recovery_routes_to_component;
        Alcotest.test_case "pending lifts prefix" `Quick
          test_composite_pending_lifts;
        QCheck_alcotest.to_alcotest prop_composite_durable_linearizable;
      ] );
  ]
