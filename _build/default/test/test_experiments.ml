(* Regression tests for the experiment harness: the quantitative claims
   the bench regenerates must keep holding (at reduced scale). *)

let test_registry_lookup () =
  Alcotest.(check int) "ten experiments" 10
    (List.length Experiments.Registry.all);
  (match Experiments.Registry.find "e3" with
  | Some e -> Alcotest.(check string) "case-insensitive" "E3" e.id
  | None -> Alcotest.fail "E3 not found");
  Alcotest.(check bool) "unknown id" true
    (Experiments.Registry.find "E99" = None)

let test_e1_subset_counts () =
  (* Algorithm 2 realises exactly 2^N non-memory-equivalent configs *)
  List.iter
    (fun n ->
      let configs = Experiments.E1_configs.subset_configs ~n in
      Alcotest.(check int) (Printf.sprintf "N=%d" n) (1 lsl n) configs;
      Alcotest.(check bool)
        (Printf.sprintf "N=%d meets the bound" n)
        true
        (configs >= 1 lsl (n - 1)))
    [ 1; 2; 3; 4; 5 ]

let test_e1_exhaustive_meets_bound () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "N=%d" n)
        true
        (Experiments.E1_configs.exhaustive_configs ~n >= 1 lsl (n - 1)))
    [ 2; 3 ]

let test_e2_dcas_flat_ucas_grows () =
  let d4 = Experiments.E2_space_cas.dcas_extra_bits ~n:2 ~ops:4 in
  let d64 = Experiments.E2_space_cas.dcas_extra_bits ~n:2 ~ops:64 in
  Alcotest.(check int) "dcas flat" d4 d64;
  let u4 = Experiments.E2_space_cas.ucas_bits ~n:2 ~ops:4 in
  let u256 = Experiments.E2_space_cas.ucas_bits ~n:2 ~ops:256 in
  Alcotest.(check bool) "ucas grows" true (u256 > u4)

let test_e2_dcas_linear_in_n () =
  (* the measured extra bits track N within a small constant *)
  List.iter
    (fun n ->
      let extra = Experiments.E2_space_cas.dcas_extra_bits ~n ~ops:4 in
      Alcotest.(check bool)
        (Printf.sprintf "N=%d: %d within [N-1, N+2]" n extra)
        true
        (extra >= n - 1 && extra <= n + 2))
    [ 2; 4; 8 ]

let test_e4_drw_flat_urw_grows () =
  let d10 = Experiments.E4_space_rw.drw_bits ~n:3 ~ops:10 in
  let d1000 = Experiments.E4_space_rw.drw_bits ~n:3 ~ops:1000 in
  Alcotest.(check int) "drw flat" d10 d1000;
  let u10 = Experiments.E4_space_rw.urw_bits ~n:3 ~ops:10 in
  let u1000 = Experiments.E4_space_rw.urw_bits ~n:3 ~ops:1000 in
  Alcotest.(check bool) "urw grows" true (u1000 > u10)

let test_e3_all_as_predicted () =
  Alcotest.(check bool) "Theorem 2 dichotomy" true
    (Experiments.E3_aux_state.all_as_predicted ())

let test_tables_render () =
  (* the cheap tables must render without raising *)
  List.iter
    (fun t -> Alcotest.(check bool) "nonempty" true (String.length (Dtc_util.Table.render t) > 0))
    [ Experiments.E7_perturb.table () ]

let suites =
  [
    ( "experiments",
      [
        Alcotest.test_case "registry lookup" `Quick test_registry_lookup;
        Alcotest.test_case "E1 subset counts" `Quick test_e1_subset_counts;
        Alcotest.test_case "E1 exhaustive bound" `Quick
          test_e1_exhaustive_meets_bound;
        Alcotest.test_case "E2 flat vs growing" `Quick
          test_e2_dcas_flat_ucas_grows;
        Alcotest.test_case "E2 linear in N" `Quick test_e2_dcas_linear_in_n;
        Alcotest.test_case "E4 flat vs growing" `Quick test_e4_drw_flat_urw_grows;
        Alcotest.test_case "E3 as predicted (Thm 2)" `Slow
          test_e3_all_as_predicted;
        Alcotest.test_case "tables render" `Quick test_tables_render;
      ] );
  ]
