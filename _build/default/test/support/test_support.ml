(* Shared helpers for the test suites. *)

open Nvm
open Runtime
open History
open Sched

let value_testable : Value.t Alcotest.testable =
  Alcotest.testable Value.pp Value.equal

let i n = Value.Int n

(* ---------------------------------------------------------------- *)
(* Instance factories: every object under test, built on a fresh
   machine.  [mk_*] return (machine, instance) as the model checker
   expects. *)

let mk_drw ?persist ?(model = Machine.Private_cache) ?(n = 3) ?(init = i 0) ()
    =
  let m = Machine.create ~model () in
  (m, Detectable.Drw.instance (Detectable.Drw.create ?persist m ~n ~init))

let mk_dcas ?persist ?(model = Machine.Private_cache) ?(n = 3) ?(init = i 0) ()
    =
  let m = Machine.create ~model () in
  (m, Detectable.Dcas.instance (Detectable.Dcas.create ?persist m ~n ~init))

let mk_dmax ?persist ?(model = Machine.Private_cache) ?(n = 3) ?(init = 0) () =
  let m = Machine.create ~model () in
  (m, Detectable.Dmax.instance (Detectable.Dmax.create ?persist m ~n ~init))

let mk_dcounter ?persist ?(model = Machine.Private_cache) ?(n = 3) ?(init = 0)
    () =
  let m = Machine.create ~model () in
  ( m,
    Detectable.Transform.instance
      (Detectable.Transform.counter ?persist m ~n ~init) )

let mk_dfaa ?persist ?(model = Machine.Private_cache) ?(n = 3) ?(init = 0) () =
  let m = Machine.create ~model () in
  (m, Detectable.Transform.instance (Detectable.Transform.faa ?persist m ~n ~init))

let mk_dqueue ?persist ?(model = Machine.Private_cache) ?(n = 3)
    ?(capacity = 32) () =
  let m = Machine.create ~model () in
  (m, Detectable.Dqueue.instance (Detectable.Dqueue.create ?persist m ~n ~capacity))

let mk_urw ?(n = 3) ?(init = i 0) () =
  let m = Machine.create () in
  (m, Baselines.Urw.instance (Baselines.Urw.create m ~n ~init))

let mk_ucas ?(n = 3) ?(init = i 0) () =
  let m = Machine.create () in
  (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n ~init))

(* ---------------------------------------------------------------- *)
(* Torture runner: many seeded random runs with crashes; fails the test
   with a pretty-printed history on the first violation. *)

let run_one ?(policy = Session.Retry) ?(max_crashes = 2) ?(crash_prob = 0.05)
    ?(keep_prob = 1.0) ?(max_steps = 20_000) ~seed mk workloads =
  let prng = Dtc_util.Prng.create seed in
  let machine, inst = mk () in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes ~keep_prob ~prob:crash_prob
          (Dtc_util.Prng.split prng);
      policy;
      max_steps;
    }
  in
  let res = Driver.run machine inst ~workloads cfg in
  (inst, res)

let assert_ok inst (res : Driver.result) ~ctx =
  if res.incomplete then
    Alcotest.failf "%s: run incomplete (step budget exhausted)" ctx;
  match Driver.check inst res with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg ->
      Alcotest.failf "%s: %s@.history:@.%a" ctx msg Event.pp_history
        res.history

let torture ?policy ?max_crashes ?crash_prob ?keep_prob ?max_steps ~trials
    ~name mk workloads_of_seed =
  for seed = 1 to trials do
    let workloads = workloads_of_seed seed in
    let inst, res =
      run_one ?policy ?max_crashes ?crash_prob ?keep_prob ?max_steps ~seed mk
        workloads
    in
    assert_ok inst res ~ctx:(Printf.sprintf "%s (seed %d)" name seed)
  done

(* Crash-free sequential run of one process; returns the responses. *)
let solo_run mk ops =
  let machine, inst = mk () in
  let cfg = Driver.default_config in
  let res = Driver.run machine inst ~workloads:[| ops |] cfg in
  ( inst,
    res,
    List.filter_map
      (function Event.Ret { v; _ } -> Some v | _ -> None)
      res.history )

(* Count outcome events per uid; used to assert verdict stability. *)
let outcomes_per_uid history =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      match (e : Event.t) with
      | Event.Ret { uid; _ } | Event.Rec_ret { uid; _ } | Event.Rec_fail { uid; _ }
        ->
          Hashtbl.replace tbl uid (1 + Option.value ~default:0 (Hashtbl.find_opt tbl uid))
      | Event.Inv _ | Event.Crash -> ())
    history;
  tbl

(* QCheck→Alcotest bridging is provided by qcheck-alcotest in the test
   executables; here we only centralise a default count. *)
let qcheck_count = 200
