(* Tests for the durable-linearizability + detectability checker on
   hand-crafted histories. *)

open Nvm
open History

let i n = Value.Int n
let reg = Spec.register (i 0)
let casc = Spec.cas_cell (i 0)

let inv pid uid op = Event.Inv { pid; uid; op }
let ret pid uid v = Event.Ret { pid; uid; v }
let rret pid uid v = Event.Rec_ret { pid; uid; v }
let rfail pid uid = Event.Rec_fail { pid; uid }

let ok spec h =
  match Lin_check.check spec h with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation msg -> Alcotest.failf "expected OK, got: %s" msg

let bad spec h =
  match Lin_check.check spec h with
  | Lin_check.Ok_linearizable _ -> Alcotest.fail "expected a violation"
  | Lin_check.Violation _ -> ()

let test_empty () = ok reg []

let test_sequential () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 5));
      ret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 5);
    ]

let test_wrong_response () =
  bad reg
    [
      inv 0 0 (Spec.write_op (i 5));
      ret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 7);
    ]

let test_concurrent_reorder () =
  (* two overlapping writes; the read may see either, as long as order is
     consistent *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 1));
      inv 1 1 (Spec.write_op (i 2));
      ret 0 0 Spec.ack;
      ret 1 1 Spec.ack;
      inv 0 2 Spec.read_op;
      ret 0 2 (i 1);
    ]

let test_real_time_order_enforced () =
  (* a write completed strictly before a read cannot be reordered after
     it: the read must not return the overwritten initial value once a
     later completed write exists *)
  bad reg
    [
      inv 0 0 (Spec.write_op (i 1));
      ret 0 0 Spec.ack;
      inv 0 1 (Spec.write_op (i 2));
      ret 0 1 Spec.ack;
      inv 1 2 Spec.read_op;
      ret 1 2 (i 1);
    ]

let test_pending_op_may_linearize () =
  (* p0's write never completes, but the read seeing it is fine *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 9));
      inv 1 1 Spec.read_op;
      ret 1 1 (i 9);
    ]

let test_pending_op_may_not_linearize () =
  ok reg [ inv 0 0 (Spec.write_op (i 9)); inv 1 1 Spec.read_op; ret 1 1 (i 0) ]

let test_rec_ret_counts_as_linearized () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rret 0 0 Spec.ack;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 3);
    ]

let test_rec_fail_forbids_linearization () =
  (* recovery said the write never happened, yet a read observed it *)
  bad reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 3);
    ]

let test_rec_fail_consistent () =
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 1 1 Spec.read_op;
      ret 1 1 (i 0);
    ]

let test_rec_fail_blocks_nothing () =
  (* ops invoked after a failed op's verdict are not blocked by it *)
  ok reg
    [
      inv 0 0 (Spec.write_op (i 3));
      Event.Crash;
      rfail 0 0;
      inv 0 1 (Spec.write_op (i 4));
      ret 0 1 Spec.ack;
      inv 1 2 Spec.read_op;
      ret 1 2 (i 4);
    ]

let test_cas_double_success_impossible () =
  (* two successful cas(0,1) with no one resetting: impossible *)
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 0) (i 1));
      ret 1 1 (Value.Bool true);
    ]

let test_cas_success_then_failure () =
  ok casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 0) (i 1));
      ret 1 1 (Value.Bool false);
    ]

let test_cas_recovered_success_proves_linearization () =
  (* q's successful cas(1,0) proves p's crashed cas(0,1) took effect, so a
     fail verdict for p is a violation *)
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      Event.Crash;
      rfail 0 0;
      inv 1 1 (Spec.cas_op (i 1) (i 0));
      ret 1 1 (Value.Bool true);
    ]

let test_malformed_double_outcome () =
  bad reg
    [
      inv 0 0 (Spec.write_op (i 1));
      ret 0 0 Spec.ack;
      rret 0 0 Spec.ack;
    ]

let test_malformed_unknown_uid () = bad reg [ ret 0 7 Spec.ack ]

let test_malformed_duplicate_inv () =
  bad reg [ inv 0 0 Spec.read_op; inv 0 0 Spec.read_op ]

(* Regression for the identity-CAS finding: the behaviour Algorithm 2 as
   published can produce — a failed cas(1,1) while the value is 1
   throughout — must be rejected.  (Our implementation runs identity CAS
   read-only precisely so this history can no longer arise.) *)
let test_identity_cas_spurious_failure_rejected () =
  bad casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 1) (i 1));
      ret 1 1 (Value.Bool false);
    ]

let test_identity_cas_success_accepted () =
  ok casc
    [
      inv 0 0 (Spec.cas_op (i 0) (i 1));
      ret 0 0 (Value.Bool true);
      inv 1 1 (Spec.cas_op (i 1) (i 1));
      ret 1 1 (Value.Bool true);
      inv 0 2 Spec.read_op;
      ret 0 2 (i 1);
    ]

let test_witness_is_reported () =
  match
    Lin_check.check reg
      [ inv 0 0 (Spec.write_op (i 5)); ret 0 0 Spec.ack ]
  with
  | Lin_check.Ok_linearizable w ->
      Alcotest.(check int) "one op linearized" 1 (List.length w)
  | Lin_check.Violation msg -> Alcotest.failf "unexpected: %s" msg

(* Property: every crash-free sequential history generated from the spec
   itself is accepted. *)
let prop_sequential_accepted =
  let gen = QCheck.(list (option (int_bound 9))) in
  QCheck.Test.make ~name:"sequential histories accepted"
    ~count:Test_support.qcheck_count gen (fun cmds ->
      let ops =
        List.map
          (function Some x -> Spec.write_op (i x) | None -> Spec.read_op)
          cmds
      in
      let ops = if List.length ops > 20 then List.filteri (fun k _ -> k < 20) ops else ops in
      let responses = Spec.run reg ops in
      let events =
        List.concat
          (List.mapi
             (fun k (op, r) -> [ inv 0 k op; ret 0 k r ])
             (List.combine ops responses))
      in
      Lin_check.is_ok (Lin_check.check reg events))

(* Property: corrupting one read response of a non-trivial sequential
   history is rejected. *)
let prop_corrupted_rejected =
  let gen = QCheck.(pair (int_range 1 9) (int_range 1 9)) in
  QCheck.Test.make ~name:"corrupted read rejected"
    ~count:Test_support.qcheck_count gen (fun (x, y) ->
      QCheck.assume (x <> y);
      let events =
        [
          inv 0 0 (Spec.write_op (i x));
          ret 0 0 Spec.ack;
          inv 0 1 Spec.read_op;
          ret 0 1 (i y);
        ]
      in
      not (Lin_check.is_ok (Lin_check.check reg events)))

let suites =
  [
    ( "history.lin_check",
      [
        Alcotest.test_case "empty" `Quick test_empty;
        Alcotest.test_case "sequential" `Quick test_sequential;
        Alcotest.test_case "wrong response" `Quick test_wrong_response;
        Alcotest.test_case "concurrent reorder" `Quick test_concurrent_reorder;
        Alcotest.test_case "real-time order" `Quick
          test_real_time_order_enforced;
        Alcotest.test_case "pending may linearize" `Quick
          test_pending_op_may_linearize;
        Alcotest.test_case "pending may not linearize" `Quick
          test_pending_op_may_not_linearize;
        Alcotest.test_case "rec_ret linearizes" `Quick
          test_rec_ret_counts_as_linearized;
        Alcotest.test_case "rec_fail forbids" `Quick
          test_rec_fail_forbids_linearization;
        Alcotest.test_case "rec_fail consistent" `Quick test_rec_fail_consistent;
        Alcotest.test_case "rec_fail blocks nothing" `Quick
          test_rec_fail_blocks_nothing;
        Alcotest.test_case "cas double success" `Quick
          test_cas_double_success_impossible;
        Alcotest.test_case "cas success then failure" `Quick
          test_cas_success_then_failure;
        Alcotest.test_case "recovered cas evidence" `Quick
          test_cas_recovered_success_proves_linearization;
        Alcotest.test_case "malformed: double outcome" `Quick
          test_malformed_double_outcome;
        Alcotest.test_case "malformed: unknown uid" `Quick
          test_malformed_unknown_uid;
        Alcotest.test_case "malformed: duplicate inv" `Quick
          test_malformed_duplicate_inv;
        Alcotest.test_case "identity cas spurious failure (regression)"
          `Quick test_identity_cas_spurious_failure_rejected;
        Alcotest.test_case "identity cas success" `Quick
          test_identity_cas_success_accepted;
        Alcotest.test_case "witness reported" `Quick test_witness_is_reported;
        QCheck_alcotest.to_alcotest prop_sequential_accepted;
        QCheck_alcotest.to_alcotest prop_corrupted_rejected;
      ] );
  ]
