(* Tests for Algorithm 1: the bounded-space detectable read/write
   object. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let test_sequential_semantics () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_drw ~n:1)
      [ Spec.read_op; Spec.write_op (i 7); Spec.read_op; Spec.write_op (i 2); Spec.read_op ]
  in
  Alcotest.(check (list v)) "responses"
    [ i 0; Spec.ack; i 7; Spec.ack; i 2 ]
    responses

let test_crash_free_concurrent () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"drw crash-free"
    (Test_support.mk_drw ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4
        ~values:3)

let test_crash_torture_retry () =
  Test_support.torture ~trials:120 ~name:"drw torture/retry"
    (Test_support.mk_drw ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create (1000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let test_crash_torture_giveup () =
  Test_support.torture ~policy:Session.Give_up ~trials:120
    ~name:"drw torture/giveup" (Test_support.mk_drw ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create (2000 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let test_many_processes () =
  Test_support.torture ~trials:20 ~name:"drw 6 procs"
    (Test_support.mk_drw ~n:6) (fun seed ->
      Workload.register (Dtc_util.Prng.create (3000 + seed)) ~procs:6
        ~ops_per_proc:2 ~values:2)

(* Crash at every single step of a solo write: each run must still check
   out, and recovery must be decisive. *)
let test_crash_at_every_step_solo () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_drw ~n:2)
      ~workloads:[| [ Spec.write_op (i 5); Spec.read_op ]; [ Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations;
  Alcotest.(check bool) "explored all crash points" true
    (out.Modelcheck.Explore.executions > 10)

(* The double-crash case: recovery itself is crashed and re-run. *)
let test_double_crash () =
  for first = 1 to 12 do
    for gap = 1 to 6 do
      let machine, inst = Test_support.mk_drw ~n:2 () in
      let cfg =
        {
          Driver.default_config with
          crash_plan = Crash_plan.at_steps [ first; first + gap ];
        }
      in
      let res =
        Driver.run machine inst
          ~workloads:
            [| [ Spec.write_op (i 1) ]; [ Spec.read_op; Spec.read_op ] |]
          cfg
      in
      Test_support.assert_ok inst res
        ~ctx:(Printf.sprintf "double crash %d+%d" first gap)
    done
  done

(* Wait-freedom: a write takes O(N) own steps, a read O(1), with no loops
   that depend on other processes. *)
let test_step_bounds () =
  let n = 5 in
  let machine, inst = Test_support.mk_drw ~n () in
  let prng = Dtc_util.Prng.create 77 in
  let workloads =
    Workload.register (Dtc_util.Prng.split prng) ~procs:n ~ops_per_proc:5
      ~values:3
  in
  let cfg =
    {
      Driver.default_config with
      schedule = Schedule.random (Dtc_util.Prng.split prng);
    }
  in
  let res = Driver.run machine inst ~workloads cfg in
  Test_support.assert_ok inst res ~ctx:"step bounds";
  List.iter
    (fun (opname, steps) ->
      match opname with
      | "write" ->
          (* announce(3) + body(7 + N toggle writes) + slack *)
          Alcotest.(check bool)
            (Printf.sprintf "write steps %d <= %d" steps (14 + n))
            true
            (steps <= 14 + n)
      | "read" ->
          Alcotest.(check bool)
            (Printf.sprintf "read steps %d small" steps)
            true (steps <= 8)
      | _ -> ())
    res.op_steps

(* Bounded space: the footprint after many operations equals the footprint
   after few. *)
let test_bounded_footprint () =
  let footprint ops_per_proc =
    let machine, inst = Test_support.mk_drw ~n:3 () in
    let prng = Dtc_util.Prng.create 4242 in
    let workloads =
      Workload.register (Dtc_util.Prng.split prng) ~procs:3 ~ops_per_proc
        ~values:3
    in
    let cfg = { Driver.default_config with max_steps = 1_000_000 } in
    let res = Driver.run machine inst ~workloads cfg in
    (* histories this long exceed the checker's op cap; correctness is
       covered elsewhere — here we only measure space *)
    Alcotest.(check bool) "run completed" false res.incomplete;
    Mem.max_shared_bits (Runtime.Machine.mem machine)
  in
  Alcotest.(check int) "flat footprint" (footprint 5) (footprint 100)

(* Detectability bookkeeping: with announcements cleared after each op,
   recovery of an idle process does nothing. *)
let test_idle_crash () =
  let machine, inst = Test_support.mk_drw ~n:2 () in
  let session =
    Session.create machine inst ~workloads:[| [ Spec.write_op (i 1) ]; [] |]
  in
  (* run p0 to completion *)
  let rec drain () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        drain ()
  in
  drain ();
  Session.crash session ~keep:(fun _ -> true);
  let rec drain2 () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        Session.step session pid;
        drain2 ()
  in
  drain2 ();
  Alcotest.(check (list string)) "no anomalies" [] (Session.anomalies session);
  match Lin_check.check inst.Obj_inst.spec (Session.history session) with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation m -> Alcotest.fail m

(* QCheck: random seeds, random workloads, random crashes — the paper's
   Lemma 1 as a property. *)
let prop_drw_durable_linearizable =
  QCheck.Test.make ~name:"drw: DL + detectability under random crashes"
    ~count:150
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let workloads =
        Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
          ~values:2
      in
      let inst, res =
        Test_support.run_one ~seed (Test_support.mk_drw ~n:3) workloads
      in
      (not res.Driver.incomplete)
      && res.Driver.anomalies = []
      && Lin_check.is_ok (Driver.check inst res))

let suites =
  [
    ( "detectable.drw",
      [
        Alcotest.test_case "sequential semantics" `Quick
          test_sequential_semantics;
        Alcotest.test_case "crash-free concurrent" `Quick
          test_crash_free_concurrent;
        Alcotest.test_case "crash torture (retry)" `Slow
          test_crash_torture_retry;
        Alcotest.test_case "crash torture (giveup)" `Slow
          test_crash_torture_giveup;
        Alcotest.test_case "six processes" `Slow test_many_processes;
        Alcotest.test_case "crash at every step" `Quick
          test_crash_at_every_step_solo;
        Alcotest.test_case "double crash" `Slow test_double_crash;
        Alcotest.test_case "wait-free step bounds" `Quick test_step_bounds;
        Alcotest.test_case "bounded footprint" `Quick test_bounded_footprint;
        Alcotest.test_case "idle crash" `Quick test_idle_crash;
        QCheck_alcotest.to_alcotest prop_drw_durable_linearizable;
      ] );
  ]
