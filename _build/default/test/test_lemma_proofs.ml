(* The case analyses of the paper's Lemma 1 (Algorithm 1) and Lemma 2
   (Algorithm 2), each branch driven as a deterministic scripted scenario
   with state inspection.  These tests document *why* the algorithms are
   correct, branch by branch, in executable form. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

let find_loc machine name =
  let mem = Machine.mem machine in
  let rec go k =
    if k >= Mem.n_locs mem then Alcotest.failf "no location named %s" name
    else
      let loc = Mem.loc_by_id mem k in
      if loc.Loc.name = name then loc else go (k + 1)
  in
  go 0

let step_until session pid pred ~ctx =
  let guard = ref 0 in
  while not (pred ()) do
    incr guard;
    if !guard > 5_000 then Alcotest.failf "%s: script did not converge" ctx;
    Session.step session pid
  done

let drain session =
  let guard = ref 0 in
  let rec go () =
    match Session.runnable session with
    | [] -> ()
    | pid :: _ ->
        incr guard;
        if !guard > 20_000 then Alcotest.fail "drain did not converge";
        Session.step session pid;
        go ()
  in
  go ()

let verdict session (inst : Obj_inst.t) =
  match Session.anomalies session with
  | a :: _ -> Lin_check.Violation ("driver anomaly: " ^ a)
  | [] -> Lin_check.check inst.Obj_inst.spec (Session.history session)

let assert_consistent session inst ~ctx =
  match verdict session inst with
  | Lin_check.Ok_linearizable _ -> ()
  | Lin_check.Violation m -> Alcotest.failf "%s: %s" ctx m

let outcome_of session uid =
  List.fold_left
    (fun acc e ->
      match (e : Event.t) with
      | Event.Ret { uid = u; v; _ } when u = uid -> `Ret v :: acc
      | Event.Rec_ret { uid = u; v; _ } when u = uid -> `Rec v :: acc
      | Event.Rec_fail { uid = u; _ } when u = uid -> `Fail :: acc
      | _ -> acc)
    [] (Session.history session)

(* ----------------------------------------------------------------- *)
(* Lemma 1 — Algorithm 1's Write *)

(* Case "crash before CP := 1": the write took no observable step, so the
   recovery must return fail. *)
let test_l1_crash_before_cp1 () =
  (* p0's write: announce is 3 steps; the body performs read R, clear
     toggle, read T, write RD, re-read R — five more steps before CP:=1.
     Crash at each of those points and check the fail verdict. *)
  for k = 1 to 8 do
    let machine, inst = Test_support.mk_drw ~n:2 () in
    let session =
      Session.create ~policy:Session.Give_up machine inst
        ~workloads:[| [ Spec.write_op (i 7) ]; [] |]
    in
    let cp = find_loc machine "Ann.cp" in
    for _ = 1 to k do
      if Session.runnable session <> [] then Session.step session 0
    done;
    (* only crash if CP is still 0 (we are before line 6) *)
    if Value.equal (Machine.peek machine cp) (i 0) then begin
      Session.crash session ~keep:(fun _ -> true);
      drain session;
      assert_consistent session inst ~ctx:(Printf.sprintf "k=%d" k);
      let r = find_loc machine "R" in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: R untouched" k)
        true
        (Value.equal (Value.nth (Machine.peek machine r) 0) (i 0));
      match outcome_of session 0 with
      | [ `Fail ] -> ()
      | _ -> Alcotest.failf "k=%d: expected a single fail verdict" k
    end
  done

(* Case "crash after the write to R, before CP := 2": claim 2 of the
   proof — recovery must detect the write happened and complete with
   ack. *)
let test_l1_crash_after_r_write () =
  let machine, inst = Test_support.mk_drw ~n:2 () in
  let session =
    Session.create ~policy:Session.Give_up machine inst
      ~workloads:[| [ Spec.write_op (i 7) ]; [] |]
  in
  let r = find_loc machine "R" in
  let cp = find_loc machine "Ann.cp" in
  step_until session 0 ~ctx:"R written" (fun () ->
      Value.equal (Value.nth (Machine.peek machine r) 0) (i 7));
  (* we are past line 7 but before line 8 *)
  Alcotest.(check bool) "CP = 1" true
    (Value.equal (Machine.peek machine cp) (i 1));
  Session.crash session ~keep:(fun _ -> true);
  drain session;
  assert_consistent session inst ~ctx:"after-R crash";
  match outcome_of session 0 with
  | [ `Rec v ] -> Alcotest.check Test_support.value_testable "ack" Spec.ack v
  | _ -> Alcotest.fail "expected recovery to complete the write"

(* Case "crash between CP:=1 and the write to R": R unchanged and p's
   toggle bit still lowered — line 20's condition holds and recovery
   answers fail. *)
let test_l1_crash_between_cp1_and_write () =
  let machine, inst = Test_support.mk_drw ~n:2 () in
  let session =
    Session.create ~policy:Session.Give_up machine inst
      ~workloads:[| [ Spec.write_op (i 7) ]; [] |]
  in
  let r = find_loc machine "R" in
  let cp = find_loc machine "Ann.cp" in
  step_until session 0 ~ctx:"CP reaches 1" (fun () ->
      Value.equal (Machine.peek machine cp) (i 1));
  (* line 6 executed, line 7 not yet *)
  Alcotest.(check bool) "R not yet written" true
    (Value.equal (Value.nth (Machine.peek machine r) 0) (i 0));
  Session.crash session ~keep:(fun _ -> true);
  drain session;
  assert_consistent session inst ~ctx:"cp1 crash";
  match outcome_of session 0 with
  | [ `Fail ] -> ()
  | _ -> Alcotest.fail "expected fail (R never written)"

(* Case "line 5 sees interference": p never writes R, yet its write
   linearizes immediately before the interfering write — it completes
   with ack and the history stays consistent. *)
let test_l1_overwritten_by_concurrent_write () =
  let machine, inst = Test_support.mk_drw ~n:2 () in
  let session =
    Session.create machine inst
      ~workloads:[| [ Spec.write_op (i 7) ]; [ Spec.write_op (i 5) ] |]
  in
  let r = find_loc machine "R" in
  (* p0 runs exactly through its first read of R (announce 3 + read 1) *)
  for _ = 1 to 4 do
    Session.step session 0
  done;
  (* p1 completes its whole write: R now holds 5 *)
  step_until session 1 ~ctx:"p1 writes" (fun () ->
      Value.equal (Value.nth (Machine.peek machine r) 0) (i 5));
  while List.mem 1 (Session.runnable session) do
    Session.step session 1
  done;
  (* p0 resumes: its line-5 re-read differs, so it must skip its own
     write to R and still complete *)
  drain session;
  assert_consistent session inst ~ctx:"overwritten write";
  Alcotest.(check bool) "p0 never wrote R" true
    (Value.equal (Value.nth (Machine.peek machine r) 0) (i 5));
  match outcome_of session 0 with
  | [ `Ret v ] -> Alcotest.check Test_support.value_testable "ack" Spec.ack v
  | _ -> Alcotest.fail "expected normal completion"

(* ----------------------------------------------------------------- *)
(* Lemma 2 — Algorithm 2's CAS *)

(* Case "val ≠ old": the CAS fails without touching vec. *)
let test_l2_value_mismatch () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session =
    Session.create machine inst ~workloads:[| [ Spec.cas_op (i 9) (i 1) ]; [] |]
  in
  let c = find_loc machine "C" in
  let vec_before = Value.nth (Machine.peek machine c) 1 in
  drain session;
  assert_consistent session inst ~ctx:"mismatch";
  Alcotest.(check Test_support.value_testable)
    "vec untouched" vec_before
    (Value.nth (Machine.peek machine c) 1);
  match outcome_of session 0 with
  | [ `Ret (Value.Bool false) ] -> ()
  | _ -> Alcotest.fail "expected false"

(* Case "crash before CP := 1": fail. *)
let test_l2_crash_before_cp1 () =
  for k = 1 to 5 do
    let machine, inst = Test_support.mk_dcas ~n:2 () in
    let session =
      Session.create ~policy:Session.Give_up machine inst
        ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [] |]
    in
    let cp = find_loc machine "Ann.cp" in
    for _ = 1 to k do
      if Session.runnable session <> [] then Session.step session 0
    done;
    if Value.equal (Machine.peek machine cp) (i 0) then begin
      Session.crash session ~keep:(fun _ -> true);
      drain session;
      assert_consistent session inst ~ctx:(Printf.sprintf "k=%d" k);
      match outcome_of session 0 with
      | [ `Fail ] -> ()
      | _ -> Alcotest.failf "k=%d: expected fail" k
    end
  done

(* Case "crash after a successful CAS, before the response persists":
   vec[p] equals RD_p, so recovery answers true. *)
let test_l2_crash_after_successful_cas () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session =
    Session.create ~policy:Session.Give_up machine inst
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [] |]
  in
  let c = find_loc machine "C" in
  step_until session 0 ~ctx:"CAS lands" (fun () ->
      Value.equal (Value.nth (Machine.peek machine c) 0) (i 1));
  Session.crash session ~keep:(fun _ -> true);
  drain session;
  assert_consistent session inst ~ctx:"post-CAS crash";
  (match outcome_of session 0 with
  | [ `Rec (Value.Bool true) ] -> ()
  | _ -> Alcotest.fail "expected recovered true");
  (* the flip bit stays flipped until p's next successful CAS *)
  let vec = Value.nth (Machine.peek machine c) 1 in
  Alcotest.(check bool) "vec[0] flipped" true (Value.to_bool (Value.nth vec 0))

(* Case "the CAS attempt failed because of interference": p crashed at
   CP = 1 with its primitive CAS defeated — vec[p] differs from RD_p and
   recovery answers fail. *)
let test_l2_interfered_cas_recovers_fail () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session =
    Session.create ~policy:Session.Give_up machine inst
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 0) (i 2) ] |]
  in
  let c = find_loc machine "C" in
  let cp = find_loc machine "Ann.cp" in
  (* p0 runs up to CP := 1 (its primitive CAS is next) *)
  step_until session 0 ~ctx:"p0 at CP=1" (fun () ->
      Value.equal (Machine.peek machine cp) (i 1));
  (* p1 wins the race: C becomes 2 *)
  step_until session 1 ~ctx:"p1 wins" (fun () ->
      Value.equal (Value.nth (Machine.peek machine c) 0) (i 2));
  (* p0's CAS executes and fails *)
  Session.step session 0;
  Session.crash session ~keep:(fun _ -> true);
  drain session;
  assert_consistent session inst ~ctx:"interfered CAS";
  match outcome_of session 0 with
  | [ `Fail ] -> ()
  | o ->
      Alcotest.failf "expected fail, got %d outcomes" (List.length o)

(* The flip-bit observation the proof leans on: "each successful CAS to C
   by p will flip the bit vec[p], and it will remain flipped until p's
   next successful CAS" — across other processes' operations. *)
let test_l2_flip_bit_stability () =
  let machine, inst = Test_support.mk_dcas ~n:2 () in
  let session =
    Session.create machine inst
      ~workloads:
        [|
          [ Spec.cas_op (i 0) (i 1) ];
          [ Spec.cas_op (i 1) (i 2); Spec.cas_op (i 2) (i 3) ];
        |]
  in
  let c = find_loc machine "C" in
  (* p0 completes its successful CAS *)
  while List.mem 0 (Session.runnable session) do
    Session.step session 0
  done;
  let bit () =
    Value.to_bool (Value.nth (Value.nth (Machine.peek machine c) 1) 0)
  in
  let flipped = bit () in
  Alcotest.(check bool) "flipped by p0" true flipped;
  (* p1's two successful CASes must not touch p0's bit *)
  drain session;
  assert_consistent session inst ~ctx:"stability";
  Alcotest.(check bool) "still flipped after p1's ops" flipped (bit ())

let suites =
  [
    ( "lemma1.drw",
      [
        Alcotest.test_case "crash before CP=1 → fail" `Quick
          test_l1_crash_before_cp1;
        Alcotest.test_case "crash after R write → ack" `Quick
          test_l1_crash_after_r_write;
        Alcotest.test_case "crash at CP=1 without write → fail" `Quick
          test_l1_crash_between_cp1_and_write;
        Alcotest.test_case "overwritten write completes" `Quick
          test_l1_overwritten_by_concurrent_write;
      ] );
    ( "lemma2.dcas",
      [
        Alcotest.test_case "value mismatch → false, vec untouched" `Quick
          test_l2_value_mismatch;
        Alcotest.test_case "crash before CP=1 → fail" `Quick
          test_l2_crash_before_cp1;
        Alcotest.test_case "crash after successful CAS → true" `Quick
          test_l2_crash_after_successful_cas;
        Alcotest.test_case "interfered CAS → fail" `Quick
          test_l2_interfered_cas_recovers_fail;
        Alcotest.test_case "flip-bit stability" `Quick test_l2_flip_bit_stability;
      ] );
  ]
