(* Tests for the sequential specifications. *)

open Nvm
open History

let v = Test_support.value_testable
let i n = Value.Int n

let test_register () =
  let spec = Spec.register (i 0) in
  Alcotest.(check (list Test_support.value_testable))
    "responses"
    [ i 0; Spec.ack; i 5; Spec.ack; i 2 ]
    (Spec.run spec
       [
         Spec.read_op;
         Spec.write_op (i 5);
         Spec.read_op;
         Spec.write_op (i 2);
         Spec.read_op;
       ])

let test_cas_cell () =
  let spec = Spec.cas_cell (i 0) in
  Alcotest.(check (list Test_support.value_testable))
    "responses"
    [ Value.Bool true; Value.Bool false; i 1; Value.Bool true ]
    (Spec.run spec
       [
         Spec.cas_op (i 0) (i 1);
         Spec.cas_op (i 0) (i 2);
         Spec.read_op;
         Spec.cas_op (i 1) (i 0);
       ])

let test_counter () =
  let spec = Spec.counter 0 in
  Alcotest.check v "final read" (i 3)
    (List.nth (Spec.run spec [ Spec.inc_op; Spec.inc_op; Spec.inc_op; Spec.read_op ]) 3)

let test_bounded_counter () =
  let spec = Spec.bounded_counter ~lo:0 ~hi:2 0 in
  Alcotest.check v "saturates" (i 2)
    (List.nth
       (Spec.run spec [ Spec.inc_op; Spec.inc_op; Spec.inc_op; Spec.read_op ])
       3);
  (match Spec.bounded_counter ~lo:0 ~hi:2 5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "init out of range accepted")

let test_faa () =
  let spec = Spec.faa_cell 10 in
  Alcotest.(check (list Test_support.value_testable))
    "returns old" [ i 10; i 15; i 15 ]
    (Spec.run spec [ Spec.faa_op 5; Spec.faa_op 0; Spec.read_op ])

let test_max_register () =
  let spec = Spec.max_register 0 in
  Alcotest.(check (list Test_support.value_testable))
    "monotone"
    [ Spec.ack; i 5; Spec.ack; i 5; Spec.ack; i 9 ]
    (Spec.run spec
       [
         Spec.write_max_op 5;
         Spec.read_op;
         Spec.write_max_op 3;
         Spec.read_op;
         Spec.write_max_op 9;
         Spec.read_op;
       ])

let test_queue () =
  let spec = Spec.fifo_queue () in
  Alcotest.(check (list Test_support.value_testable))
    "fifo"
    [ Value.Str "empty"; Spec.ack; Spec.ack; i 1; i 2; Value.Str "empty" ]
    (Spec.run spec
       [
         Spec.deq_op;
         Spec.enq_op (i 1);
         Spec.enq_op (i 2);
         Spec.deq_op;
         Spec.deq_op;
         Spec.deq_op;
       ])

let test_unsupported_op () =
  let spec = Spec.register (i 0) in
  match Spec.run spec [ Spec.inc_op ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "register accepted inc"

(* Model-based property: the queue spec behaves like a functional list. *)
let prop_queue_vs_list_model =
  let gen =
    QCheck.list
      (QCheck.map
         (fun (b, x) -> if b then `Enq x else `Deq)
         QCheck.(pair bool (int_bound 20)))
  in
  QCheck.Test.make ~name:"queue spec = list model"
    ~count:Test_support.qcheck_count gen (fun cmds ->
      let spec = Spec.fifo_queue () in
      let rec go state model cmds =
        match cmds with
        | [] -> true
        | `Enq x :: rest ->
            let state', r = spec.Spec.step state (Spec.enq_op (i x)) in
            Value.equal r Spec.ack && go state' (model @ [ x ]) rest
        | `Deq :: rest -> (
            let state', r = spec.Spec.step state Spec.deq_op in
            match model with
            | [] -> Value.equal r (Value.Str "empty") && go state' [] rest
            | x :: model' -> Value.equal r (i x) && go state' model' rest)
      in
      go spec.Spec.init [] cmds)

(* Model-based property: register returns the last written value. *)
let prop_register_last_write =
  let gen = QCheck.list QCheck.(option (int_bound 20)) in
  QCheck.Test.make ~name:"register returns last write"
    ~count:Test_support.qcheck_count gen (fun cmds ->
      let spec = Spec.register (i 0) in
      let rec go state last cmds =
        match cmds with
        | [] -> true
        | Some x :: rest ->
            let state', _ = spec.Spec.step state (Spec.write_op (i x)) in
            go state' x rest
        | None :: rest ->
            let state', r = spec.Spec.step state Spec.read_op in
            Value.equal r (i last) && go state' last rest
      in
      go spec.Spec.init 0 cmds)

(* Counter value equals the number of incs. *)
let prop_counter_counts =
  QCheck.Test.make ~name:"counter counts incs" ~count:Test_support.qcheck_count
    QCheck.(int_bound 50)
    (fun n ->
      let spec = Spec.counter 0 in
      let ops = List.init n (fun _ -> Spec.inc_op) @ [ Spec.read_op ] in
      Value.equal (List.nth (Spec.run spec ops) n) (i n))

(* Max register returns the max over writes. *)
let prop_max_register_max =
  QCheck.Test.make ~name:"max register returns the max"
    ~count:Test_support.qcheck_count
    QCheck.(list (int_bound 100))
    (fun xs ->
      let spec = Spec.max_register 0 in
      let ops = List.map Spec.write_max_op xs @ [ Spec.read_op ] in
      let expect = List.fold_left max 0 xs in
      Value.equal (List.nth (Spec.run spec ops) (List.length xs)) (i expect))

let test_op_equality () =
  Alcotest.(check bool) "equal ops" true
    (Spec.equal_op (Spec.cas_op (i 1) (i 2)) (Spec.cas_op (i 1) (i 2)));
  Alcotest.(check bool) "different args" false
    (Spec.equal_op (Spec.cas_op (i 1) (i 2)) (Spec.cas_op (i 1) (i 3)));
  Alcotest.(check bool) "different names" false
    (Spec.equal_op Spec.read_op Spec.inc_op)

let suites =
  [
    ( "history.spec",
      [
        Alcotest.test_case "register" `Quick test_register;
        Alcotest.test_case "cas" `Quick test_cas_cell;
        Alcotest.test_case "counter" `Quick test_counter;
        Alcotest.test_case "bounded counter" `Quick test_bounded_counter;
        Alcotest.test_case "faa" `Quick test_faa;
        Alcotest.test_case "max register" `Quick test_max_register;
        Alcotest.test_case "queue" `Quick test_queue;
        Alcotest.test_case "unsupported op" `Quick test_unsupported_op;
        Alcotest.test_case "op equality" `Quick test_op_equality;
        QCheck_alcotest.to_alcotest prop_queue_vs_list_model;
        QCheck_alcotest.to_alcotest prop_register_last_write;
        QCheck_alcotest.to_alcotest prop_counter_counts;
        QCheck_alcotest.to_alcotest prop_max_register_max;
      ] );
  ]
