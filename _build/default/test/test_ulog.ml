(* Tests for the log-based universal construction and the durable
   (non-detectable) queue — the Section 6 alternatives to the paper's
   bespoke algorithms. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

let mk_ulog ?(mode = `Detectable) ?(n = 3) ?(capacity = 64) ~spec () =
  let m = Machine.create () in
  (m, Detectable.Ulog.instance (Detectable.Ulog.create ~mode m ~n ~capacity ~spec))

let mk_ulog_reg ?mode ?n ?capacity () =
  mk_ulog ?mode ?n ?capacity ~spec:(Spec.register (i 0)) ()

let mk_ulog_queue ?mode ?n ?capacity () =
  mk_ulog ?mode ?n ?capacity ~spec:(Spec.fifo_queue ()) ()

let mk_dur_queue ?(n = 3) ?(capacity = 64) () =
  let m = Machine.create () in
  (m, Baselines.Dur_queue.instance (Baselines.Dur_queue.create m ~n ~capacity))

(* --- universal construction: genericity --- *)

let test_ulog_register_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_ulog_reg ~n:1)
      [ Spec.read_op; Spec.write_op (i 5); Spec.read_op ]
  in
  Alcotest.(check (list v)) "register semantics" [ i 0; Spec.ack; i 5 ] responses

let test_ulog_queue_sequential () =
  let _, _, responses =
    Test_support.solo_run (mk_ulog_queue ~n:1)
      [ Spec.enq_op (i 1); Spec.enq_op (i 2); Spec.deq_op; Spec.deq_op ]
  in
  Alcotest.(check (list v)) "queue semantics"
    [ Spec.ack; Spec.ack; i 1; i 2 ]
    responses

let test_ulog_counter_sequential () =
  let _, _, responses =
    Test_support.solo_run
      (fun () -> mk_ulog ~n:1 ~spec:(Spec.counter 0) ())
      [ Spec.inc_op; Spec.inc_op; Spec.read_op ]
  in
  Alcotest.(check v) "counter semantics" (i 2) (List.nth responses 2)

(* --- detectable mode --- *)

let test_ulog_detectable_torture () =
  Test_support.torture ~trials:80 ~name:"ulog/detectable torture"
    (mk_ulog_reg ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:2)

let test_ulog_detectable_queue_torture () =
  Test_support.torture ~trials:80 ~name:"ulog/queue torture"
    (mk_ulog_queue ~n:3) (fun seed ->
      Workload.queue (Dtc_util.Prng.create (500 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3)

let test_ulog_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(mk_ulog_reg ~n:2)
      ~workloads:[| [ Spec.write_op (i 5) ]; [ Spec.read_op; Spec.write_op (i 2) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* the log grows with operations: the unbounded-space trade *)
let test_ulog_log_grows () =
  let len ops =
    let machine = Machine.create () in
    let u =
      Detectable.Ulog.create machine ~n:1 ~capacity:(ops + 4)
        ~spec:(Spec.register (i 0))
    in
    let inst = Detectable.Ulog.instance u in
    let workloads = [| List.init ops (fun _ -> Spec.write_op (i 1)) |] in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    let res = Driver.run machine inst ~workloads cfg in
    Alcotest.(check bool) "complete" false res.Driver.incomplete;
    Detectable.Ulog.log_length machine u
  in
  Alcotest.(check int) "one entry per op (10)" 10 (len 10);
  Alcotest.(check int) "one entry per op (40)" 40 (len 40)

let test_ulog_capacity_exhaustion () =
  let machine = Machine.create () in
  let u =
    Detectable.Ulog.create machine ~n:1 ~capacity:2 ~spec:(Spec.register (i 0))
  in
  let inst = Detectable.Ulog.instance u in
  match
    Driver.run machine inst
      ~workloads:[| List.init 3 (fun _ -> Spec.write_op (i 1)) |]
      Driver.default_config
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected log-full error"

(* --- durable mode: DL holds, detectability doesn't --- *)

let test_ulog_durable_consistent () =
  (* histories remain consistent (pending ops are May) even though
     recovery answers unknown *)
  Test_support.torture ~trials:80 ~name:"ulog/durable torture"
    (mk_ulog_reg ~mode:`Durable ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create (800 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:2)

let test_dur_queue_consistent () =
  Test_support.torture ~trials:80 ~name:"dur_queue torture" (mk_dur_queue ~n:3)
    (fun seed ->
      Workload.queue (Dtc_util.Prng.create (900 + seed)) ~procs:3
        ~ops_per_proc:3 ~values:3)

let test_dur_queue_sequential () =
  let _, _, responses =
    Test_support.solo_run
      (mk_dur_queue ~n:1)
      [ Spec.enq_op (i 1); Spec.deq_op; Spec.deq_op ]
  in
  Alcotest.(check (list v)) "fifo" [ Spec.ack; i 1; Value.Str "empty" ] responses

(* the crucial difference: under Retry, the durable variants can
   duplicate an interrupted enqueue — the detectable queue cannot *)
let count_duplicate_consumption ~mk ~seeds =
  let dups = ref 0 in
  List.iter
    (fun seed ->
      let prng = Dtc_util.Prng.create seed in
      let machine, inst = mk () in
      let cfg =
        {
          Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
          crash_plan =
            Crash_plan.random ~max_crashes:3 ~prob:0.12
              (Dtc_util.Prng.split prng);
          policy = Session.Retry;
          max_steps = 100_000;
        }
      in
      (* unique values so duplicates are identifiable; consumers over-poll *)
      let workloads =
        [|
          List.init 3 (fun k -> Spec.enq_op (i (100 + k)));
          List.init 3 (fun k -> Spec.enq_op (i (200 + k)));
          List.init 8 (fun _ -> Spec.deq_op);
        |]
      in
      let res = Driver.run machine inst ~workloads cfg in
      Test_support.assert_ok inst res ~ctx:(Printf.sprintf "seed %d" seed);
      let consumed =
        List.filter_map
          (function
            | Event.Ret { v = Value.Int x; _ }
            | Event.Rec_ret { v = Value.Int x; _ } ->
                Some x
            | _ -> None)
          res.Driver.history
      in
      let sorted = List.sort compare consumed in
      let rec count = function
        | a :: b :: rest when a = b -> 1 + count (b :: rest)
        | _ :: rest -> count rest
        | [] -> 0
      in
      dups := !dups + count sorted)
    seeds;
  !dups

let test_detectable_queue_never_duplicates () =
  let seeds = List.init 60 (fun k -> 7000 + k) in
  Alcotest.(check int) "no duplicates" 0
    (count_duplicate_consumption
       ~mk:(fun () -> Test_support.mk_dqueue ~n:3 ~capacity:64 ())
       ~seeds)

let test_durable_queue_can_duplicate () =
  (* histories stay DL-consistent (the checker passed above); the
     application-level duplicates are what detectability prevents *)
  let seeds = List.init 60 (fun k -> 7000 + k) in
  Alcotest.(check bool) "duplicates appear" true
    (count_duplicate_consumption ~mk:(fun () -> mk_dur_queue ~n:3 ()) ~seeds > 0)

let suites =
  [
    ( "detectable.ulog",
      [
        Alcotest.test_case "register semantics" `Quick
          test_ulog_register_sequential;
        Alcotest.test_case "queue semantics" `Quick test_ulog_queue_sequential;
        Alcotest.test_case "counter semantics" `Quick
          test_ulog_counter_sequential;
        Alcotest.test_case "detectable torture" `Slow
          test_ulog_detectable_torture;
        Alcotest.test_case "detectable queue torture" `Slow
          test_ulog_detectable_queue_torture;
        Alcotest.test_case "crash at every step" `Quick
          test_ulog_crash_at_every_step;
        Alcotest.test_case "log grows" `Quick test_ulog_log_grows;
        Alcotest.test_case "capacity exhaustion" `Quick
          test_ulog_capacity_exhaustion;
        Alcotest.test_case "durable mode consistent" `Slow
          test_ulog_durable_consistent;
      ] );
    ( "baselines.dur_queue",
      [
        Alcotest.test_case "sequential" `Quick test_dur_queue_sequential;
        Alcotest.test_case "DL holds under torture" `Slow
          test_dur_queue_consistent;
        Alcotest.test_case "detectable queue never duplicates" `Slow
          test_detectable_queue_never_duplicates;
        Alcotest.test_case "durable queue can duplicate" `Slow
          test_durable_queue_can_duplicate;
      ] );
  ]
