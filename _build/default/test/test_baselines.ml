(* Tests for the baseline implementations: the unbounded-tag detectable
   objects (Urw, Ucas) and the plain non-recoverable ones. *)

open Nvm
open History
open Sched

let i n = Value.Int n
let v = Test_support.value_testable

(* --- Urw --- *)

let test_urw_sequential () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_urw ~n:1)
      [ Spec.read_op; Spec.write_op (i 3); Spec.read_op ]
  in
  Alcotest.(check (list v)) "responses" [ i 0; Spec.ack; i 3 ] responses

let test_urw_torture () =
  Test_support.torture ~trials:100 ~name:"urw torture"
    (Test_support.mk_urw ~n:3) (fun seed ->
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:2)

let test_urw_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_urw ~n:2)
      ~workloads:[| [ Spec.write_op (i 5); Spec.read_op ]; [ Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

(* The defining property of the baseline: the register's footprint grows
   with the number of operations (unbounded tags). *)
let test_urw_unbounded_growth () =
  let footprint ops =
    let machine = Runtime.Machine.create () in
    let u = Baselines.Urw.create machine ~n:1 ~init:(i 0) in
    let inst = Baselines.Urw.instance u in
    let workloads = [| List.init ops (fun _ -> Spec.write_op (i 1)) |] in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    let res = Driver.run machine inst ~workloads cfg in
    Alcotest.(check bool) "run completed" false res.incomplete;
    let r =
      match Baselines.Urw.shared_locs u with [ r ] -> r | _ -> assert false
    in
    Mem.max_bits_of (Runtime.Machine.mem machine) r
  in
  Alcotest.(check bool) "footprint grows" true (footprint 2000 > footprint 10)

(* --- Ucas --- *)

let test_ucas_sequential () =
  let _, _, responses =
    Test_support.solo_run (Test_support.mk_ucas ~n:1)
      [
        Spec.cas_op (i 0) (i 1);
        Spec.cas_op (i 0) (i 2);
        Spec.read_op;
        Spec.cas_op (i 1) (i 0);
      ]
  in
  Alcotest.(check (list v)) "responses"
    [ Value.Bool true; Value.Bool false; i 1; Value.Bool true ]
    responses

let test_ucas_torture () =
  Test_support.torture ~trials:100 ~name:"ucas torture"
    (Test_support.mk_ucas ~n:3) (fun seed ->
      Workload.cas (Dtc_util.Prng.create (700 + seed)) ~procs:3 ~ops_per_proc:3
        ~values:2)

let test_ucas_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points ~mk:(Test_support.mk_ucas ~n:2)
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

let test_ucas_aba_with_crashes () =
  (* small domains force value reuse; unique tags must keep recovery
     decisive *)
  Test_support.torture ~trials:100 ~max_crashes:3 ~crash_prob:0.08
    ~name:"ucas aba" (Test_support.mk_ucas ~n:4) (fun seed ->
      Workload.cas (Dtc_util.Prng.create (900 + seed)) ~procs:4 ~ops_per_proc:3
        ~values:2)

(* identity CAS must run read-only here too (same reasoning as Dcas) *)
let test_ucas_identity_storm () =
  Test_support.torture ~trials:80 ~name:"ucas identity storm"
    (Test_support.mk_ucas ~n:3) (fun seed ->
      let prng = Dtc_util.Prng.create (4_000 + seed) in
      Array.init 3 (fun _ ->
          List.init 3 (fun _ ->
              match Dtc_util.Prng.int prng 4 with
              | 0 -> Spec.cas_op (i 0) (i 0)
              | 1 -> Spec.cas_op (i 1) (i 1)
              | 2 -> Spec.cas_op (i 0) (i 1)
              | _ -> Spec.cas_op (i 1) (i 0))))

let test_ucas_unbounded_growth () =
  let footprint ops =
    let machine = Runtime.Machine.create () in
    let u = Baselines.Ucas.create machine ~n:1 ~init:(i 0) in
    let inst = Baselines.Ucas.instance u in
    let workloads =
      [|
        List.concat
          (List.init ops (fun _ ->
               [ Spec.cas_op (i 0) (i 1); Spec.cas_op (i 1) (i 0) ]));
      |]
    in
    let cfg = { Driver.default_config with max_steps = 10_000_000 } in
    let res = Driver.run machine inst ~workloads cfg in
    Alcotest.(check bool) "run completed" false res.incomplete;
    Mem.max_shared_bits (Runtime.Machine.mem machine)
  in
  Alcotest.(check bool) "footprint grows" true (footprint 1000 > footprint 5)

(* --- Plain --- *)

let mk_plain_reg () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Plain.register m ~init:(i 0))

let mk_plain_queue () =
  let m = Runtime.Machine.create () in
  (m, Baselines.Plain.queue m ~capacity:32)

let test_plain_register_crash_free () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"plain register"
    mk_plain_reg (fun seed ->
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4
        ~values:3)

let test_plain_queue_crash_free () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"plain queue"
    mk_plain_queue (fun seed ->
      Workload.queue (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4
        ~values:4)

let test_plain_counter_crash_free () =
  Test_support.torture ~crash_prob:0.0 ~trials:40 ~name:"plain counter"
    (fun () ->
      let m = Runtime.Machine.create () in
      (m, Baselines.Plain.counter m ~init:0))
    (fun seed ->
      Workload.counter (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:4)

(* Under crashes, plain objects are NOT detectable.  The plain register's
   write is a single primitive step, so the simulation never catches it
   between effect and return — but any multi-step operation exposes the
   window.  The plain queue's enqueue links the node with a CAS several
   steps before returning: crash in between, and the system (with nothing
   announced) must treat the enqueue as failed although a dequeuer can
   already see the element. *)
let test_plain_queue_not_detectable () =
  let out =
    Modelcheck.Explore.crash_points ~mk:mk_plain_queue
      ~workloads:[| [ Spec.enq_op (i 1) ]; [ Spec.deq_op; Spec.deq_op ] |]
      ~schedule:(fun () ->
        Schedule.scripted (List.init 20 (fun _ -> 0)))
      ~policy:Session.Give_up ()
  in
  Alcotest.(check bool) "some crash point violates" true
    (out.Modelcheck.Explore.total_violations > 0)

(* For contrast, the single-step plain register happens to be crash-atomic
   in this simulation: effect and return cannot be separated. *)
let test_plain_register_crash_atomic () =
  let out =
    Modelcheck.Explore.crash_points ~mk:mk_plain_reg
      ~workloads:[| [ Spec.write_op (i 1) ]; [ Spec.read_op ] |]
      ~schedule:(fun () -> Schedule.scripted (List.init 10 (fun _ -> 0)))
      ~policy:Session.Give_up ()
  in
  Alcotest.(check int) "crash-atomic" 0 out.Modelcheck.Explore.total_violations

let suites =
  [
    ( "baselines.urw",
      [
        Alcotest.test_case "sequential" `Quick test_urw_sequential;
        Alcotest.test_case "torture" `Slow test_urw_torture;
        Alcotest.test_case "crash at every step" `Quick
          test_urw_crash_at_every_step;
        Alcotest.test_case "unbounded growth" `Quick test_urw_unbounded_growth;
      ] );
    ( "baselines.ucas",
      [
        Alcotest.test_case "sequential" `Quick test_ucas_sequential;
        Alcotest.test_case "torture" `Slow test_ucas_torture;
        Alcotest.test_case "crash at every step" `Quick
          test_ucas_crash_at_every_step;
        Alcotest.test_case "ABA with crashes" `Slow test_ucas_aba_with_crashes;
        Alcotest.test_case "identity storm" `Slow test_ucas_identity_storm;
        Alcotest.test_case "unbounded growth" `Quick test_ucas_unbounded_growth;
      ] );
    ( "baselines.plain",
      [
        Alcotest.test_case "register crash-free" `Quick
          test_plain_register_crash_free;
        Alcotest.test_case "queue crash-free" `Quick test_plain_queue_crash_free;
        Alcotest.test_case "counter crash-free" `Quick
          test_plain_counter_crash_free;
        Alcotest.test_case "queue not detectable" `Quick
          test_plain_queue_not_detectable;
        Alcotest.test_case "register crash-atomic" `Quick
          test_plain_register_crash_atomic;
      ] );
  ]
