(* Tests for the NRL wrapper: recovery must complete the operation and
   never answer fail. *)

open History
open Nvm
open Sched

let i n = Value.Int n

let mk_nrl_dcas ?(n = 3) () =
  let m = Runtime.Machine.create () in
  ( m,
    Detectable.Nrl.wrap
      (Detectable.Dcas.instance (Detectable.Dcas.create m ~n ~init:(i 0))) )

let mk_nrl_drw ?(n = 3) () =
  let m = Runtime.Machine.create () in
  ( m,
    Detectable.Nrl.wrap
      (Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0))) )

(* The wrapper's contract: whenever the wrapped recovery runs, it never
   answers fail.  (Histories may still contain a [Rec_fail] for an
   operation whose announcement was cut down by a crash — there recovery
   never ran at all, because the system saw nothing pending.)  We count
   fail answers by instrumenting [recover] directly. *)
let never_fails_run ~seed ~name mk workloads =
  let fails = ref 0 in
  let mk_counted () =
    let machine, inst = mk () in
    let recover ~pid op =
      let r = inst.Sched.Obj_inst.recover ~pid op in
      if Sched.Obj_inst.is_fail r then incr fails;
      r
    in
    (machine, { inst with Sched.Obj_inst.recover })
  in
  let inst, res = Test_support.run_one ~seed mk_counted workloads in
  Test_support.assert_ok inst res ~ctx:(Printf.sprintf "%s seed %d" name seed);
  if !fails > 0 then
    Alcotest.failf "seed %d: NRL recovery answered fail@.%a" seed
      Event.pp_history res.Driver.history

let test_nrl_never_fails_drw () =
  for seed = 1 to 80 do
    let workloads =
      Workload.register (Dtc_util.Prng.create seed) ~procs:3 ~ops_per_proc:3
        ~values:2
    in
    never_fails_run ~seed ~name:"nrl drw" mk_nrl_drw workloads
  done

let test_nrl_never_fails_dcas () =
  for seed = 1 to 80 do
    let workloads =
      Workload.cas (Dtc_util.Prng.create (500 + seed)) ~procs:3 ~ops_per_proc:3
        ~values:2
    in
    never_fails_run ~seed ~name:"nrl dcas" mk_nrl_dcas workloads
  done

(* The wrapper re-executes across repeated crashes of the recovery. *)
let test_nrl_double_crash () =
  for first = 1 to 10 do
    let machine, inst = mk_nrl_dcas ~n:2 () in
    let cfg =
      {
        Driver.default_config with
        crash_plan = Crash_plan.at_steps [ first; first + 3 ];
      }
    in
    let res =
      Driver.run machine inst
        ~workloads:
          [| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 2) ] |]
        cfg
    in
    Test_support.assert_ok inst res ~ctx:(Printf.sprintf "crash %d" first)
  done

let test_nrl_crash_at_every_step () =
  let out =
    Modelcheck.Explore.crash_points
      ~mk:(fun () -> mk_nrl_dcas ~n:2 ())
      ~workloads:[| [ Spec.cas_op (i 0) (i 1) ]; [ Spec.cas_op (i 1) (i 0) ] |]
      ~schedule:(fun () -> Schedule.round_robin ())
      ()
  in
  Alcotest.(check int) "no violations" 0 out.Modelcheck.Explore.total_violations

let test_descr_tagged () =
  let _, inst = mk_nrl_dcas () in
  Alcotest.(check bool) "descr mentions nrl" true
    (String.length inst.Obj_inst.descr >= 4
    && String.sub inst.Obj_inst.descr 0 4 = "nrl(")

let suites =
  [
    ( "detectable.nrl",
      [
        Alcotest.test_case "never fails (drw)" `Slow test_nrl_never_fails_drw;
        Alcotest.test_case "never fails (dcas)" `Slow test_nrl_never_fails_dcas;
        Alcotest.test_case "double crash" `Quick test_nrl_double_crash;
        Alcotest.test_case "crash at every step" `Quick
          test_nrl_crash_at_every_step;
        Alcotest.test_case "descr tagged" `Quick test_descr_tagged;
      ] );
  ]
