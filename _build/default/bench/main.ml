(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   - every experiment table E1-E10 (the paper's figures, theorems and
     complexity claims — see DESIGN.md's per-experiment index);
   - T1a: simulated primitive-steps-per-operation costs (the
     hardware-independent cost model of each implementation);
   - T1b: Bechamel wall-clock micro-benchmarks of the same workloads (the
     cost of implementation + simulator on this machine). *)

open Dtc_util
open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

(* ------------------------------------------------------------------ *)
(* T1a: simulated steps per operation *)

let solo_steps ~mk ~ops_of =
  let machine, inst = mk () in
  let ops = ops_of () in
  let cfg = { Driver.default_config with max_steps = 10_000_000 } in
  let res = Driver.run machine inst ~workloads:[| ops |] cfg in
  if res.Driver.incomplete then failwith "bench run incomplete";
  float_of_int res.Driver.steps /. float_of_int (List.length ops)

let steps_table () =
  let t =
    Table.create
      ~title:
        "T1a: simulated primitive steps per operation (solo, 100 ops, incl. \
         announce/clear protocol)"
      [ "implementation"; "workload"; "steps/op" ]
  in
  let k = 100 in
  let row label mk ops_of =
    Table.add_row t
      [ label; "100 ops"; Printf.sprintf "%.1f" (solo_steps ~mk ~ops_of) ]
  in
  let writes () = List.init k (fun j -> Spec.write_op (i (j mod 4))) in
  let cases () =
    List.init k (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  row "drw (Alg.1, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
    writes;
  row "urw (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
    writes;
  row "plain register (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.register m ~init:(i 0)))
    writes;
  row "dcas (Alg.2, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
    cases;
  row "ucas (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
    cases;
  row "plain cas (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.cas_cell m ~init:(i 0)))
    cases;
  row "dmax (Alg.3, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dmax.instance (Detectable.Dmax.create m ~n:3 ~init:0)))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.write_max_op j else Spec.read_op));
  row "dcounter (capsule, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Transform.instance
          (Detectable.Transform.counter m ~n:3 ~init:0) ))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "plain counter (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.counter m ~init:0))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "dqueue (N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n:3 ~capacity:128)
      ))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "plain queue (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.queue m ~capacity:128))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "dprotected (lock-based, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dprotected.instance (Detectable.Dprotected.create m ~n:3 ~init:0)))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "ulog register (universal, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Ulog.instance
          (Detectable.Ulog.create m ~n:3 ~capacity:(k + 4)
             ~spec:(Spec.register (i 0))) ))
    writes;
  t

(* The N-dependence of Algorithm 1's write (its toggle-raising loop). *)
let drw_scaling_table () =
  let t =
    Table.create
      ~title:"T1a': Algorithm 1 write cost grows linearly in N (the toggle loop)"
      [ "N"; "steps per write (solo)" ]
  in
  List.iter
    (fun n ->
      let steps =
        solo_steps
          ~mk:(fun () ->
            let m = Machine.create () in
            (m, Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0))))
          ~ops_of:(fun () -> List.init 50 (fun j -> Spec.write_op (i (j mod 3))))
      in
      Table.add_row t [ string_of_int n; Printf.sprintf "%.1f" steps ])
    [ 2; 4; 8; 16; 32 ];
  t

(* ------------------------------------------------------------------ *)
(* T1b: Bechamel wall-clock micro-benchmarks *)

let bech_workload ~mk ~ops () =
  let machine, inst = mk () in
  let cfg = { Driver.default_config with max_steps = 1_000_000 } in
  ignore (Driver.run machine inst ~workloads:[| ops |] cfg)

let bechamel_tests () =
  let open Bechamel in
  let mk_test name mk ops =
    Test.make ~name (Staged.stage (bech_workload ~mk ~ops))
  in
  let writes = List.init 50 (fun j -> Spec.write_op (i (j mod 4))) in
  let cases =
    List.init 50 (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  let qops =
    List.init 50 (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op)
  in
  Test.make_grouped ~name:"bench" ~fmt:"%s.%s"
    [
      mk_test "drw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "urw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "plain.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.register m ~init:(i 0)))
        writes;
      mk_test "dcas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "ucas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "plain.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.cas_cell m ~init:(i 0)))
        cases;
      mk_test "dqueue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Dqueue.instance
              (Detectable.Dqueue.create m ~n:3 ~capacity:128) ))
        qops;
      mk_test "plain_queue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.queue m ~capacity:128))
        qops;
    ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ()) in
  let results = Analyze.all ols instance raw in
  let t =
    Table.create ~title:"T1b: wall-clock per 50-op solo workload (Bechamel OLS)"
      [ "benchmark"; "time/run"; "us/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f ns" ns;
          Printf.sprintf "%.2f" (ns /. 1000.0 /. 50.0);
        ])
    (List.sort compare !rows);
  Table.print t

(* ------------------------------------------------------------------ *)
(* Checker-throughput benchmark, JSON output (`bench/main.exe --json`).

   Emits one machine-readable record per engine configuration on the
   Dcas N=3 acceptance workload, so the model checker's throughput —
   nodes/sec, dedup hit rate, budget reach — is a benchmark trajectory
   future PRs can track.  The tier-1 test suite smoke-runs this mode and
   parses the output (bench/json_check.ml), so the format must stay
   valid JSON. *)

let mk_dcas_n3 () =
  let m = Machine.create () in
  (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0)))

let dcas_n3_workload =
  [|
    [ Spec.cas_op (i 0) (i 1) ];
    [ Spec.cas_op (i 1) (i 2) ];
    [ Spec.cas_op (i 0) (i 2) ];
  |]

let engine_json ~engine (cfg : Modelcheck.Explore.config)
    (out : Modelcheck.Explore.outcome) =
  let m = out.Modelcheck.Explore.metrics in
  let hit_rate =
    let total = m.Modelcheck.Explore.dedup_hits + out.Modelcheck.Explore.nodes in
    if total = 0 then 0.0
    else float_of_int m.Modelcheck.Explore.dedup_hits /. float_of_int total
  in
  Printf.sprintf
    {|    { "engine": %S, "switch_budget": %d, "crash_budget": %d,
      "domains": %d, "prune": %b,
      "executions": %d, "truncated": %d, "nodes": %d,
      "total_violations": %d, "distinct_shared_configs": %d,
      "dedup_hits": %d, "dedup_hit_rate": %.4f, "nodes_saved": %d,
      "peak_visited": %d, "elapsed_s": %.6f, "nodes_per_sec": %.1f }|}
    engine cfg.Modelcheck.Explore.switch_budget
    cfg.Modelcheck.Explore.crash_budget m.Modelcheck.Explore.domains_used
    cfg.Modelcheck.Explore.prune out.Modelcheck.Explore.executions
    out.Modelcheck.Explore.truncated out.Modelcheck.Explore.nodes
    out.Modelcheck.Explore.total_violations
    out.Modelcheck.Explore.distinct_shared_configs
    m.Modelcheck.Explore.dedup_hits hit_rate
    m.Modelcheck.Explore.nodes_saved m.Modelcheck.Explore.peak_visited
    m.Modelcheck.Explore.elapsed_s m.Modelcheck.Explore.nodes_per_sec

let checker_json ~budget =
  let base =
    {
      Modelcheck.Explore.default_config with
      switch_budget = budget;
      crash_budget = 1;
    }
  in
  (* On a single-core box extra domains only buy stop-the-world GC
     synchronisation, so follow the runtime's recommendation. *)
  let domains = min 8 (Domain.recommended_domain_count ()) in
  let runs =
    [
      ("seed_unpruned", { base with Modelcheck.Explore.prune = false });
      ("pruned", base);
      ("pruned_parallel", { base with Modelcheck.Explore.domains = domains });
      ( "pruned_parallel_budget_plus",
        {
          base with
          Modelcheck.Explore.switch_budget = base.Modelcheck.Explore.switch_budget + 1;
          domains;
        } );
    ]
  in
  let results =
    List.map
      (fun (engine, cfg) ->
        let out =
          Modelcheck.Explore.explore ~mk:mk_dcas_n3 ~workloads:dcas_n3_workload
            cfg
        in
        engine_json ~engine cfg out)
      runs
  in
  Printf.printf
    "{\n  \"schema\": \"detectable-bench/checker-v1\",\n  \"workload\": \
     \"dcas_n3_one_cas_each\",\n  \"base_switch_budget\": %d,\n  \"engines\": \
     [\n%s\n  ]\n}\n"
    budget
    (String.concat ",\n" results)

(* [--json [--budget N]]: base switch budget N (default 1: a sub-second
   smoke run for the test suite); the final engine row always runs at
   N+1 to track how far past the seed engine's reach the pruned checker
   gets. *)
let () =
  if Array.exists (( = ) "--json") Sys.argv then begin
    let budget =
      let rec find i =
        if i >= Array.length Sys.argv - 1 then 1
        else if Sys.argv.(i) = "--budget" then
          match int_of_string_opt Sys.argv.(i + 1) with
          | Some n when n >= 0 -> n
          | _ ->
              prerr_endline
                "bench: --budget expects a non-negative integer switch budget";
              exit 2
        else find (i + 1)
      in
      find 1
    in
    checker_json ~budget
  end
  else begin
    Experiments.Registry.run_all ();
    print_newline ();
    Table.print (steps_table ());
    Table.print (drw_scaling_table ());
    run_bechamel ();
    print_endline "done."
  end
