(* Benchmark & experiment harness.

   Running `dune exec bench/main.exe` regenerates, in order:

   - every experiment table E1-E10 (the paper's figures, theorems and
     complexity claims — see DESIGN.md's per-experiment index);
   - T1a: simulated primitive-steps-per-operation costs (the
     hardware-independent cost model of each implementation);
   - T1b: Bechamel wall-clock micro-benchmarks of the same workloads (the
     cost of implementation + simulator on this machine). *)

open Dtc_util
open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

(* ------------------------------------------------------------------ *)
(* T1a: simulated steps per operation *)

let solo_steps ~mk ~ops_of =
  let machine, inst = mk () in
  let ops = ops_of () in
  let cfg = { Driver.default_config with max_steps = 10_000_000 } in
  let res = Driver.run machine inst ~workloads:[| ops |] cfg in
  if res.Driver.incomplete then failwith "bench run incomplete";
  float_of_int res.Driver.steps /. float_of_int (List.length ops)

let steps_table () =
  let t =
    Table.create
      ~title:
        "T1a: simulated primitive steps per operation (solo, 100 ops, incl. \
         announce/clear protocol)"
      [ "implementation"; "workload"; "steps/op" ]
  in
  let k = 100 in
  let row label mk ops_of =
    Table.add_row t
      [ label; "100 ops"; Printf.sprintf "%.1f" (solo_steps ~mk ~ops_of) ]
  in
  let writes () = List.init k (fun j -> Spec.write_op (i (j mod 4))) in
  let cases () =
    List.init k (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  row "drw (Alg.1, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
    writes;
  row "urw (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
    writes;
  row "plain register (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.register m ~init:(i 0)))
    writes;
  row "dcas (Alg.2, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
    cases;
  row "ucas (unbounded tags, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
    cases;
  row "plain cas (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.cas_cell m ~init:(i 0)))
    cases;
  row "dmax (Alg.3, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dmax.instance (Detectable.Dmax.create m ~n:3 ~init:0)))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.write_max_op j else Spec.read_op));
  row "dcounter (capsule, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Transform.instance
          (Detectable.Transform.counter m ~n:3 ~init:0) ))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "plain counter (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.counter m ~init:0))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "dqueue (N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Dqueue.instance (Detectable.Dqueue.create m ~n:3 ~capacity:128)
      ))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "plain queue (not recoverable)"
    (fun () ->
      let m = Machine.create () in
      (m, Baselines.Plain.queue m ~capacity:128))
    (fun () ->
      List.init k (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op));
  row "dprotected (lock-based, N=3)"
    (fun () ->
      let m = Machine.create () in
      (m, Detectable.Dprotected.instance (Detectable.Dprotected.create m ~n:3 ~init:0)))
    (fun () -> List.init k (fun _ -> Spec.inc_op));
  row "ulog register (universal, N=3)"
    (fun () ->
      let m = Machine.create () in
      ( m,
        Detectable.Ulog.instance
          (Detectable.Ulog.create m ~n:3 ~capacity:(k + 4)
             ~spec:(Spec.register (i 0))) ))
    writes;
  t

(* The N-dependence of Algorithm 1's write (its toggle-raising loop). *)
let drw_scaling_table () =
  let t =
    Table.create
      ~title:"T1a': Algorithm 1 write cost grows linearly in N (the toggle loop)"
      [ "N"; "steps per write (solo)" ]
  in
  List.iter
    (fun n ->
      let steps =
        solo_steps
          ~mk:(fun () ->
            let m = Machine.create () in
            (m, Detectable.Drw.instance (Detectable.Drw.create m ~n ~init:(i 0))))
          ~ops_of:(fun () -> List.init 50 (fun j -> Spec.write_op (i (j mod 3))))
      in
      Table.add_row t [ string_of_int n; Printf.sprintf "%.1f" steps ])
    [ 2; 4; 8; 16; 32 ];
  t

(* ------------------------------------------------------------------ *)
(* T1b: Bechamel wall-clock micro-benchmarks *)

let bech_workload ~mk ~ops () =
  let machine, inst = mk () in
  let cfg = { Driver.default_config with max_steps = 1_000_000 } in
  ignore (Driver.run machine inst ~workloads:[| ops |] cfg)

let bechamel_tests () =
  let open Bechamel in
  let mk_test name mk ops =
    Test.make ~name (Staged.stage (bech_workload ~mk ~ops))
  in
  let writes = List.init 50 (fun j -> Spec.write_op (i (j mod 4))) in
  let cases =
    List.init 50 (fun j ->
        if j mod 2 = 0 then Spec.cas_op (i 0) (i 1) else Spec.cas_op (i 1) (i 0))
  in
  let qops =
    List.init 50 (fun j -> if j mod 2 = 0 then Spec.enq_op (i j) else Spec.deq_op)
  in
  Test.make_grouped ~name:"bench" ~fmt:"%s.%s"
    [
      mk_test "drw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Drw.instance (Detectable.Drw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "urw.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Urw.instance (Baselines.Urw.create m ~n:3 ~init:(i 0))))
        writes;
      mk_test "plain.write"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.register m ~init:(i 0)))
        writes;
      mk_test "dcas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Detectable.Dcas.instance (Detectable.Dcas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "ucas.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Ucas.instance (Baselines.Ucas.create m ~n:3 ~init:(i 0))))
        cases;
      mk_test "plain.cas"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.cas_cell m ~init:(i 0)))
        cases;
      mk_test "dqueue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          ( m,
            Detectable.Dqueue.instance
              (Detectable.Dqueue.create m ~n:3 ~capacity:128) ))
        qops;
      mk_test "plain_queue.enqdeq"
        (fun () ->
          let m = Machine.create () in
          (m, Baselines.Plain.queue m ~capacity:128))
        qops;
    ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let raw = Benchmark.all cfg [ instance ] (bechamel_tests ()) in
  let results = Analyze.all ols instance raw in
  let t =
    Table.create ~title:"T1b: wall-clock per 50-op solo workload (Bechamel OLS)"
      [ "benchmark"; "time/run"; "us/op" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) ->
      Table.add_row t
        [
          name;
          Printf.sprintf "%.0f ns" ns;
          Printf.sprintf "%.2f" (ns /. 1000.0 /. 50.0);
        ])
    (List.sort compare !rows);
  Table.print t

let () =
  Experiments.Registry.run_all ();
  print_newline ();
  Table.print (steps_table ());
  Table.print (drw_scaling_table ());
  run_bechamel ();
  print_endline "done."
