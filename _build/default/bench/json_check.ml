(* Smoke validator for `bench/main.exe --json` output, run from the
   tier-1 test alias: parses the file with a minimal recursive-descent
   JSON parser (no external dependency) and checks the checker-metrics
   schema markers are present, so the bench output stays machine-readable
   as the engine evolves. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let error msg = fail "json_check: parse error at byte %d: %s" !pos msg in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> error "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
              Buffer.add_char b '?';
              advance ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do
                match peek () with
                | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                | _ -> error "bad \\u escape"
              done;
              Buffer.add_char b '?'
          | _ -> error "bad escape");
          go ()
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> error "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected , or ] in array"
          in
          elems []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> error "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

let () =
  let path =
    if Array.length Sys.argv = 2 then Sys.argv.(1)
    else fail "usage: json_check FILE"
  in
  let contents =
    (* read by chunks: works for pipes and /dev/stdin, where
       [in_channel_length] cannot seek *)
    let ic = open_in_bin path in
    let b = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      let k = input ic chunk 0 (Bytes.length chunk) in
      if k > 0 then begin
        Buffer.add_subbytes b chunk 0 k;
        go ()
      end
    in
    go ();
    close_in ic;
    Buffer.contents b
  in
  match parse contents with
  | Obj fields ->
      let get k =
        match List.assoc_opt k fields with
        | Some v -> v
        | None -> fail "json_check: missing key %S" k
      in
      (match get "schema" with
      | Str "detectable-bench/checker-v1" -> ()
      | _ -> fail "json_check: unexpected schema");
      (match get "engines" with
      | List (_ :: _ as engines) ->
          List.iter
            (function
              | Obj e ->
                  List.iter
                    (fun k ->
                      if not (List.mem_assoc k e) then
                        fail "json_check: engine record missing %S" k)
                    [
                      "engine"; "switch_budget"; "crash_budget"; "domains";
                      "executions"; "nodes"; "total_violations";
                      "distinct_shared_configs"; "dedup_hit_rate";
                      "nodes_per_sec"; "elapsed_s";
                    ]
              | _ -> fail "json_check: engine entry is not an object")
            engines
      | _ -> fail "json_check: \"engines\" must be a non-empty array");
      print_endline "bench --json output: valid"
  | _ -> fail "json_check: top-level value is not an object"
