(* A crash-safe key-value store from detectable read/write registers.

   Run with:  dune exec examples/kv_store.exe

   One Algorithm 1 register per key.  Client processes update and read
   keys while the harness injects system-wide crashes; after every crash
   the store's recovery dispatcher resolves each in-flight operation to
   "took effect, here is the response" or "provably did not happen", and
   the per-key histories are verified against the register specification.

   This is the motivating scenario for detectability: the application
   layer (here, the workload runner) can retry exactly the operations
   that provably did not happen — no lost updates, no double updates. *)

open Nvm
open Runtime
open History
open Sched

let keys = [ "alpha"; "beta"; "gamma" ]
let n_procs = 3
let rounds = 4

let () =
  let prng = Dtc_util.Prng.create 7 in
  let total_crashes = ref 0 in
  let total_retries = ref 0 in
  (* the store: one detectable register per key, each in its own machine
     so its history can be checked independently *)
  List.iter
    (fun key ->
      let machine = Machine.create () in
      let reg = Detectable.Drw.create machine ~n:n_procs ~init:(Value.Int 0) in
      let inst = Detectable.Drw.instance reg in
      let workloads =
        Array.init n_procs (fun pid ->
            List.concat
              (List.init rounds (fun round ->
                   [
                     Spec.write_op (Value.Int ((100 * pid) + round));
                     Spec.read_op;
                   ])))
      in
      let cfg =
        {
          Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
          crash_plan =
            Crash_plan.random ~max_crashes:2 ~prob:0.04 (Dtc_util.Prng.split prng);
          policy = Session.Retry;
          max_steps = 100_000;
        }
      in
      let res = Driver.run machine inst ~workloads cfg in
      total_crashes := !total_crashes + res.Driver.crashes;
      let retries =
        List.length
          (List.filter
             (function Event.Rec_fail _ -> true | _ -> false)
             res.Driver.history)
      in
      total_retries := !total_retries + retries;
      let verdict =
        match Driver.check inst res with
        | Lin_check.Ok_linearizable _ -> "consistent ✓"
        | Lin_check.Violation m -> "VIOLATION: " ^ m
      in
      Printf.printf
        "key %-6s  %3d ops, %d crashes, %d fail-verdicts (retried), %s\n" key
        (List.length
           (List.filter
              (function Event.Inv _ -> true | _ -> false)
              res.Driver.history))
        res.Driver.crashes retries verdict)
    keys;
  Printf.printf
    "\nstore survived %d crashes; %d provably-unexecuted operations were retried\n"
    !total_crashes !total_retries
