(* Exactly-once money movement over a crash-prone system.

   Run with:  dune exec examples/bank_transfer.exe

   A shared vault balance is a detectable fetch-and-add object (the
   capsule transform over Algorithm 2's CAS core).  Tellers deposit fixed
   amounts while crashes strike.  Detectability is what makes the books
   balance: after a crash, a teller's recovery either returns the
   deposit's response (it happened — do NOT replay it) or the fail
   verdict (it provably did not — replay it).  With the Retry policy
   every deposit lands exactly once, so the final balance equals the sum
   of all deposits, which we verify, along with the full history. *)

open Nvm
open Runtime
open History
open Sched

let tellers = 3
let deposits_per_teller = 5
let amount pid k = ((pid + 1) * 10) + k (* distinct, easy to audit *)

let () =
  let machine = Machine.create () in
  let vault = Detectable.Transform.faa machine ~n:tellers ~init:0 in
  let inst = Detectable.Transform.instance vault in
  let workloads =
    Array.init tellers (fun pid ->
        List.init deposits_per_teller (fun k -> Spec.faa_op (amount pid k)))
  in
  let expected_total =
    Array.to_list workloads
    |> List.concat_map (fun ops ->
           List.map
             (fun (op : Spec.op) -> Value.to_int op.Spec.args.(0))
             ops)
    |> List.fold_left ( + ) 0
  in
  let prng = Dtc_util.Prng.create 11 in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes:3 ~prob:0.06 (Dtc_util.Prng.split prng);
      policy = Session.Retry;
      max_steps = 200_000;
    }
  in
  let res = Driver.run machine inst ~workloads cfg in
  let c =
    match Detectable.Transform.shared_locs vault with
    | [ c ] -> c
    | _ -> assert false
  in
  let final = Value.to_int (Value.nth (Machine.peek machine c) 0) in
  Printf.printf "tellers:          %d\n" tellers;
  Printf.printf "deposits:         %d (total %d)\n"
    (tellers * deposits_per_teller)
    expected_total;
  Printf.printf "crashes injected: %d\n" res.Driver.crashes;
  Printf.printf "fail verdicts:    %d (each retried exactly once)\n"
    (List.length
       (List.filter
          (function Event.Rec_fail _ -> true | _ -> false)
          res.Driver.history));
  Printf.printf "final balance:    %d\n" final;
  if final = expected_total then print_endline "books balance ✓"
  else Printf.printf "BOOKS DO NOT BALANCE (expected %d)\n" expected_total;
  match Driver.check inst res with
  | Lin_check.Ok_linearizable _ -> print_endline "history consistent ✓"
  | Lin_check.Violation m -> Printf.printf "history VIOLATION: %s\n" m
