(* A crash-safe job queue: producers, consumers and power failures.

   Run with:  dune exec examples/job_queue.exe

   Producers enqueue jobs and consumers dequeue them over the detectable
   durable FIFO queue while crashes strike.  Detectability gives the
   at-most-once/exactly-once story: after a crash a producer knows
   whether its job was linked (so it never double-submits) and a consumer
   knows whether it claimed a job (so no job is processed twice and no
   claimed job is lost).  We audit exactly that at the end, on top of the
   full history check. *)

open Nvm
open Runtime
open History
open Sched

let producers = 2
let consumers = 2
let jobs_per_producer = 4

let () =
  let n = producers + consumers in
  let machine = Machine.create () in
  let queue =
    Detectable.Dqueue.create machine ~n
      ~capacity:(producers * jobs_per_producer * 2)
  in
  let inst = Detectable.Dqueue.instance queue in
  let job pid k = Value.Int ((100 * (pid + 1)) + k) in
  let workloads =
    Array.init n (fun pid ->
        if pid < producers then
          List.init jobs_per_producer (fun k -> Spec.enq_op (job pid k))
        else
          (* consumers poll a little more than their share *)
          List.init (jobs_per_producer + 2) (fun _ -> Spec.deq_op))
  in
  let prng = Dtc_util.Prng.create 23 in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes:3 ~prob:0.05 (Dtc_util.Prng.split prng);
      policy = Session.Retry;
      max_steps = 200_000;
    }
  in
  let res = Driver.run machine inst ~workloads cfg in

  (* audit: every consumed job was produced, and consumed at most once *)
  let produced =
    Array.to_list workloads
    |> List.concat_map
         (List.filter_map (fun (op : Spec.op) ->
              if op.Spec.name = "enq" then Some op.Spec.args.(0) else None))
  in
  let consumed =
    List.filter_map
      (function
        | Event.Ret { v = Value.Int x; _ } | Event.Rec_ret { v = Value.Int x; _ }
          ->
            Some x
        | _ -> None)
      res.Driver.history
  in
  let duplicates =
    let sorted = List.sort compare consumed in
    let rec go = function
      | a :: b :: _ when a = b -> true
      | _ :: rest -> go rest
      | [] -> false
    in
    go sorted
  in
  let alien =
    List.exists
      (fun x -> not (List.exists (Value.equal (Value.Int x)) produced))
      consumed
  in
  Printf.printf "jobs produced:    %d\n" (List.length produced);
  Printf.printf "jobs consumed:    %d\n" (List.length consumed);
  Printf.printf "crashes injected: %d\n" res.Driver.crashes;
  Printf.printf "duplicates:       %s\n" (if duplicates then "YES (bug!)" else "none ✓");
  Printf.printf "alien jobs:       %s\n" (if alien then "YES (bug!)" else "none ✓");
  match Driver.check inst res with
  | Lin_check.Ok_linearizable _ -> print_endline "history consistent ✓"
  | Lin_check.Violation m -> Printf.printf "history VIOLATION: %s\n" m
