(* A composite ledger: three detectable objects behind one interface.

   Run with:  dune exec examples/ledger.exe

   One machine hosts an account balance (detectable CAS), an audit log
   (detectable durable queue) and a statistics counter (the lock-based
   detectable counter) — composed into a single detectable object whose
   operations carry component prefixes.  This is Section 6's composability
   point made concrete: after a crash, recovery resolves exactly the one
   component operation that was in flight, and the whole composite is
   checked against the product of the three specifications. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n
let lift = Detectable.Compose.lift

let () =
  let machine = Machine.create () in
  let acct = Detectable.Dcas.instance (Detectable.Dcas.create machine ~n:3 ~init:(i 100)) in
  let log =
    Detectable.Dqueue.instance (Detectable.Dqueue.create machine ~n:3 ~capacity:64)
  in
  let stats =
    Detectable.Dprotected.instance (Detectable.Dprotected.create machine ~n:3 ~init:0)
  in
  let ledger =
    Detectable.Compose.combine [ ("acct", acct); ("log", log); ("stats", stats) ]
  in
  (* each teller: adjust the balance, log the adjustment, bump the stats *)
  let teller pid delta =
    [
      lift "acct" (Spec.cas_op (i 100) (i (100 + delta)));
      lift "log" (Spec.enq_op (i ((1000 * pid) + delta)));
      lift "stats" Spec.inc_op;
      lift "acct" Spec.read_op;
    ]
  in
  let workloads = [| teller 0 7; teller 1 11; teller 2 13 |] in
  let prng = Dtc_util.Prng.create 4242 in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes:3 ~prob:0.05 (Dtc_util.Prng.split prng);
      policy = Session.Retry;
      max_steps = 200_000;
    }
  in
  let res = Driver.run machine ledger ~workloads cfg in
  Printf.printf "composite: %s\n\n" ledger.Obj_inst.descr;
  Printf.printf "steps: %d   crashes: %d   recovery fail-verdicts: %d\n"
    res.Driver.steps res.Driver.crashes
    (List.length
       (List.filter
          (function Event.Rec_fail _ -> true | _ -> false)
          res.Driver.history));
  (* exactly one balance CAS can win the race from 100 *)
  let winners =
    List.filter
      (function
        | Event.Ret { v = Value.Bool true; _ }
        | Event.Rec_ret { v = Value.Bool true; _ } ->
            true
        | _ -> false)
      res.Driver.history
  in
  Printf.printf "balance CASes that won the race from 100: %d (expected 1)\n"
    (List.length winners);
  match Driver.check ledger res with
  | Lin_check.Ok_linearizable _ ->
      print_endline "composite history consistent against the product spec ✓"
  | Lin_check.Violation m -> Printf.printf "VIOLATION: %s\n" m
