(* Any object, made recoverable: the universal construction.

   Run with:  dune exec examples/universal.exe

   One module gives crash-recovery to ANY sequential specification: the
   object's state is an append-only NVM log and operations linearize at
   the CAS that claims their slot.  In detectable mode each invocation is
   tagged through the announcement (auxiliary state, as Theorem 2 says it
   must be), so recovery answers exactly.  Here we make the plain OCaml
   "max register" spec — and then a FIFO queue — recoverable in three
   lines each, and torture them with crashes.

   The price appears in the last line: the log never shrinks.  Compare
   with Algorithms 1 and 2, whose whole point is bounded space. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

let run_and_report ~name ~spec ~workloads =
  let machine = Machine.create () in
  let obj = Detectable.Ulog.create machine ~n:3 ~capacity:128 ~spec in
  let inst = Detectable.Ulog.instance obj in
  let prng = Dtc_util.Prng.create 99 in
  let cfg =
    {
      Driver.schedule = Schedule.random (Dtc_util.Prng.split prng);
      crash_plan =
        Crash_plan.random ~max_crashes:3 ~prob:0.05 (Dtc_util.Prng.split prng);
      policy = Session.Retry;
      max_steps = 500_000;
    }
  in
  let res = Driver.run machine inst ~workloads cfg in
  let verdict =
    match Driver.check inst res with
    | Lin_check.Ok_linearizable _ -> "consistent ✓"
    | Lin_check.Violation m -> "VIOLATION: " ^ m
  in
  Format.printf "%-12s %a — %s; log length %d@." name Hist.pp_stats
    (Hist.stats res.Driver.history)
    verdict
    (Detectable.Ulog.log_length machine obj)

let () =
  run_and_report ~name:"max-register" ~spec:(Spec.max_register 0)
    ~workloads:
      [|
        [ Spec.write_max_op 5; Spec.read_op ];
        [ Spec.write_max_op 9; Spec.read_op ];
        [ Spec.read_op; Spec.write_max_op 3; Spec.read_op ];
      |];
  run_and_report ~name:"queue" ~spec:(Spec.fifo_queue ())
    ~workloads:
      [|
        [ Spec.enq_op (i 1); Spec.enq_op (i 2); Spec.deq_op ];
        [ Spec.deq_op; Spec.enq_op (i 3) ];
        [ Spec.deq_op; Spec.deq_op ];
      |];
  print_endline
    "\nany spec works — but the log grows forever, which is why the paper's\n\
     bounded-space algorithms exist."
