(* Quickstart: a detectable CAS object surviving a crash.

   Run with:  dune exec examples/quickstart.exe

   Three simulated processes hammer one detectable CAS cell (Algorithm 2
   of the paper).  We inject a system-wide crash mid-run; every process's
   recovery function then tells it — from NVM alone — whether its
   in-flight operation took effect, and the checker confirms the whole
   history is durably linearizable and detectable. *)

open Nvm
open Runtime
open History
open Sched

let i n = Value.Int n

let () =
  (* 1. a machine (the simulated NVM) and the object living in it *)
  let machine = Machine.create () in
  let dcas = Detectable.Dcas.create machine ~n:3 ~init:(i 0) in
  let inst = Detectable.Dcas.instance dcas in

  (* 2. what each process wants to do *)
  let workloads =
    [|
      [ Spec.cas_op (i 0) (i 1); Spec.read_op ];
      [ Spec.cas_op (i 0) (i 2); Spec.cas_op (i 1) (i 2) ];
      [ Spec.read_op; Spec.cas_op (i 2) (i 3) ];
    |]
  in

  (* 3. run under a random schedule with a crash at global step 9 *)
  let cfg =
    {
      Driver.default_config with
      schedule = Schedule.random (Dtc_util.Prng.create 2020);
      crash_plan = Crash_plan.at_steps [ 9 ];
    }
  in
  let res = Driver.run machine inst ~workloads cfg in

  (* 4. inspect what happened *)
  print_endline "event history (inv = invoke, ret = response, rec = recovery):";
  Format.printf "%a@." Event.pp_history res.Driver.history;
  Printf.printf "primitive steps: %d, crashes: %d\n\n" res.Driver.steps
    res.Driver.crashes;

  (* 5. check durable linearizability + detectability *)
  (match Driver.check inst res with
  | Lin_check.Ok_linearizable witness ->
      print_endline "verdict: linearizable ✓  — one witness order:";
      List.iter (fun op -> Format.printf "  %a@." Spec.pp_op op) witness
  | Lin_check.Violation msg -> Printf.printf "verdict: VIOLATION — %s\n" msg);

  (* 6. the headline space claim: Θ(N) bits beyond the value *)
  let c =
    match Detectable.Dcas.shared_locs dcas with [ c ] -> c | _ -> assert false
  in
  Printf.printf
    "\nshared variable C peaked at %d bits (value bits + one flip bit per process)\n"
    (Mem.max_bits_of (Machine.mem machine) c)
